"""torch.compile cost model and Inductor fusion transform."""

import pytest

from repro.engine import ExecutionMode, compile_time, lower_graph, unique_gemm_classes
from repro.engine.compiler import apply_inductor_fusion
from repro.workloads import BERT_BASE, GEMMA_2B, GPT2, build_graph


@pytest.fixture(scope="module")
def gemma_graph():
    return build_graph(GEMMA_2B, 1, 1024)


def test_eager_pays_only_cold_start(gemma_graph):
    report = compile_time(gemma_graph, ExecutionMode.EAGER, 473)
    assert report.total_s == pytest.approx(0.406)
    assert report.inductor_s == 0


def test_compile_ladder_costs_increase(gemma_graph):
    costs = [compile_time(gemma_graph, mode, 473).total_s for mode in (
        ExecutionMode.EAGER,
        ExecutionMode.COMPILE_DEFAULT,
        ExecutionMode.COMPILE_REDUCE_OVERHEAD,
        ExecutionMode.COMPILE_MAX_AUTOTUNE,
    )]
    assert costs == sorted(costs)
    assert costs[-1] > 100  # max-autotune is minutes, not seconds (Table I)


def test_table1_compile_times_within_tolerance(gemma_graph):
    """Paper Table I: 0.406 / 6.28 / 12.75 / 387.3 seconds.

    Capture cost is priced per *captured* kernel, i.e. after Inductor
    fusion — the same count the executor passes.
    """
    fused = apply_inductor_fusion(lower_graph(gemma_graph),
                                  ExecutionMode.COMPILE_REDUCE_OVERHEAD)
    captured = sum(len(lo.kernels) for lo in fused)
    default = compile_time(gemma_graph, ExecutionMode.COMPILE_DEFAULT, captured)
    assert default.total_s == pytest.approx(6.28, rel=0.15)
    reduce_overhead = compile_time(
        gemma_graph, ExecutionMode.COMPILE_REDUCE_OVERHEAD, captured)
    assert reduce_overhead.total_s == pytest.approx(12.75, rel=0.15)
    # max-autotune lowers attention to FlashAttention, removing the two bmm
    # problem classes from the Triton search space.
    from repro.workloads import AttentionImpl, GEMMA_2B, build_graph
    flash_graph = build_graph(GEMMA_2B, 1, 1024, attention=AttentionImpl.FLASH)
    autotune = compile_time(flash_graph, ExecutionMode.COMPILE_MAX_AUTOTUNE,
                            captured)
    assert autotune.total_s == pytest.approx(387.3, rel=0.15)


def test_unique_gemm_classes_counts_distinct_shapes(gemma_graph):
    classes = unique_gemm_classes(gemma_graph)
    # Gemma: q, k/v, gate/up, down, lm_head linears + 2 bmm shapes.
    assert classes == 7


def test_negative_kernel_count_rejected(gemma_graph):
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        compile_time(gemma_graph, ExecutionMode.EAGER, -1)


def test_inductor_fusion_reduces_kernels():
    lowered = lower_graph(build_graph(GPT2, 1, 128))
    fused = apply_inductor_fusion(lowered, ExecutionMode.COMPILE_DEFAULT)
    eager_kernels = sum(len(lo.kernels) for lo in lowered)
    fused_kernels = sum(len(lo.kernels) for lo in fused)
    assert fused_kernels < eager_kernels * 0.75


def test_inductor_fusion_noop_for_eager():
    lowered = lower_graph(build_graph(BERT_BASE, 1, 128))
    assert apply_inductor_fusion(lowered, ExecutionMode.EAGER) is lowered


def test_inductor_fusion_preserves_flops():
    lowered = lower_graph(build_graph(GPT2, 1, 128))
    fused = apply_inductor_fusion(lowered, ExecutionMode.COMPILE_DEFAULT)
    before = sum(k.flops for lo in lowered for k in lo.kernels)
    after = sum(k.flops for lo in fused for k in lo.kernels)
    assert after == pytest.approx(before)


def test_inductor_fusion_reduces_traffic():
    lowered = lower_graph(build_graph(GPT2, 1, 128))
    fused = apply_inductor_fusion(lowered, ExecutionMode.COMPILE_DEFAULT)
    before = sum(k.bytes_moved for lo in lowered for k in lo.kernels)
    after = sum(k.bytes_moved for lo in fused for k in lo.kernels)
    assert after < before


def test_inductor_keeps_gemms_individual():
    lowered = lower_graph(build_graph(BERT_BASE, 1, 128))
    fused = apply_inductor_fusion(lowered, ExecutionMode.COMPILE_DEFAULT)
    gemms_before = sum(1 for lo in lowered for k in lo.kernels if k.is_gemm)
    gemms_after = sum(1 for lo in fused for k in lo.kernels if k.is_gemm)
    assert gemms_before == gemms_after


def test_max_autotune_scales_gemm_durations():
    lowered = lower_graph(build_graph(BERT_BASE, 1, 128))
    fused = apply_inductor_fusion(lowered, ExecutionMode.COMPILE_MAX_AUTOTUNE)
    gemm_scales = {k.duration_scale for lo in fused for k in lo.kernels
                   if k.is_gemm}
    assert gemm_scales == {ExecutionMode.COMPILE_MAX_AUTOTUNE.gemm_duration_scale}


def test_fusion_preserves_op_alignment():
    lowered = lower_graph(build_graph(GPT2, 1, 128))
    fused = apply_inductor_fusion(lowered, ExecutionMode.COMPILE_DEFAULT)
    assert [lo.op for lo in fused] == [lo.op for lo in lowered]
