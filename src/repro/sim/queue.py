"""Deterministic event queue.

A min-heap of ``(time, seq)`` entries. ``seq`` is a monotonically increasing
insertion counter, so two events scheduled for the same instant pop in the
order they were pushed — simulation results never depend on heap internals,
which is what makes multi-process runs (and their traces) reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.errors import SimulationError


class EventQueue:
    """Time-ordered event queue with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time_ns: float, item: Any) -> None:
        """Schedule ``item`` at ``time_ns``."""
        if time_ns < 0:
            raise SimulationError("event time must be non-negative")
        heapq.heappush(self._heap, (time_ns, self._seq, item))
        self._seq += 1

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, item)`` entry."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        time_ns, _, item = heapq.heappop(self._heap)
        return time_ns, item

    def peek_time(self) -> float:
        """Earliest scheduled time without popping."""
        if not self._heap:
            raise SimulationError("peek into an empty event queue")
        return self._heap[0][0]
