"""Property-based tests for the vector-index substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

vectors_strategy = arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(5, 40), st.just(8)),
    elements=st.floats(-10, 10, width=32),
)


@given(vectors=vectors_strategy, k=st.integers(1, 10))
@settings(max_examples=60, deadline=None)
def test_brute_force_topk_invariants(vectors, k):
    from repro.retrieval import BruteForceIndex
    # Skip degenerate all-zero corpora (normalization keeps them at 0).
    index = BruteForceIndex(8)
    index.add(vectors)
    result = index.search(vectors[0], k=k)
    assert len(result) == min(k, len(vectors))
    assert list(result.scores) == sorted(result.scores, reverse=True)
    assert all(-1.0001 <= s <= 1.0001 for s in result.scores)
    assert len(set(result.ids.tolist())) == len(result.ids)


@given(vectors=vectors_strategy)
@settings(max_examples=40, deadline=None)
def test_self_query_is_top1_for_nondegenerate_vectors(vectors):
    from repro.retrieval import BruteForceIndex
    query = vectors[0]
    if np.linalg.norm(query) < 1e-3:
        return  # zero vector has no meaningful direction
    index = BruteForceIndex(8)
    index.add(vectors)
    result = index.search(query, k=1)
    best_score = result.scores[0]
    # The stored copy of the query itself scores 1.0, so top-1 must too
    # (ties with duplicates are allowed).
    assert best_score >= 1.0 - 1e-4
