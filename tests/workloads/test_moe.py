"""Mixture-of-experts workload construction."""

import pytest

from repro.engine import kernel_count
from repro.errors import ConfigurationError
from repro.workloads import (
    LLAMA_2_7B,
    MISTRAL_7B,
    MIXTRAL_8X7B,
    ModelConfig,
    OpKind,
    build_graph,
)
from repro.workloads.config import Activation, Arch, Norm, Positional


def test_mixtral_param_count():
    # Published: 46.7B total parameters.
    assert MIXTRAL_8X7B.param_count() == pytest.approx(46.7e9, rel=0.03)


def test_moe_layer_structure():
    graph = build_graph(MIXTRAL_8X7B, 1, 128)
    layer0 = graph.labels_matching("decoder.layer.0.moe")
    kinds = [op.kind for op in layer0]
    assert kinds.count(OpKind.TOPK) == 1
    assert kinds.count(OpKind.SOFTMAX) == 1
    assert kinds.count(OpKind.INDEX_SELECT) == 8   # one gather per expert
    assert kinds.count(OpKind.SCATTER_ADD) == 8
    assert kinds.count(OpKind.LINEAR) == 1 + 8 * 3  # router + 3 per expert


def test_eager_moe_multiplies_kernel_count():
    """The launch-tax story: eager MoE launches ~3.7x more kernels than the
    dense model it shares attention with (Mistral-7B)."""
    moe_kernels = kernel_count(build_graph(MIXTRAL_8X7B, 1, 512))
    dense_kernels = kernel_count(build_graph(MISTRAL_7B, 1, 512))
    assert moe_kernels > 3 * dense_kernels


def test_moe_active_flops_far_below_dense_equivalent():
    """Top-2-of-8 routing: per-token MLP FLOPs ~2 experts' worth, not 8."""
    moe = build_graph(MIXTRAL_8X7B, 4, 512)
    moe_mlp_flops = sum(op.flops for op in moe.ops if ".moe.expert" in op.label)
    dense = build_graph(MISTRAL_7B, 4, 512)
    dense_mlp_flops = sum(op.flops for op in dense.ops if ".mlp." in op.label)
    # Same dims: active MoE compute ~= top_k x dense MLP compute.
    assert moe_mlp_flops == pytest.approx(2 * dense_mlp_flops, rel=0.2)


def test_moe_validation():
    base = dict(name="toy-moe", arch=Arch.DECODER_ONLY, hidden=64, layers=1,
                heads=4, intermediate=128, vocab=1000, norm=Norm.RMSNORM,
                activation=Activation.SILU, positional=Positional.ROPE)
    with pytest.raises(ConfigurationError):
        ModelConfig(**base, moe_experts=-1)
    with pytest.raises(ConfigurationError):
        ModelConfig(**base, moe_experts=4, moe_top_k=5)
    config = ModelConfig(**base, moe_experts=4, moe_top_k=1)
    assert config.is_moe


def test_dense_models_unchanged():
    assert not LLAMA_2_7B.is_moe
    graph = build_graph(LLAMA_2_7B, 1, 128)
    assert not any(".moe." in op.label for op in graph.ops)


def test_moe_launch_tax_at_low_batch(intel_profiler):
    """Eager Mixtral at BS=1 carries ~3.4x the dense model's launches and
    CPU time. On the x86 system the GPU is still the limit — tiny routed
    token counts make every expert GEMM stream its full 117 MB weight
    matrix (the classic MoE bandwidth problem, visible on the roofline)."""
    from repro.hardware import INTEL_H100
    from repro.skip import KernelRegime, classify_kernels
    moe = intel_profiler.profile(MIXTRAL_8X7B, batch_size=1, seq_len=128)
    dense = intel_profiler.profile(MISTRAL_7B, batch_size=1, seq_len=128)
    assert moe.metrics.kernel_launches > 3 * dense.metrics.kernel_launches
    assert moe.metrics.cpu_busy_ns > 3 * dense.metrics.cpu_busy_ns
    roofline = classify_kernels(moe.trace, INTEL_H100.gpu)
    expert_gemms = [p for p in roofline.points
                    if "gemm" in p.name and p.bytes_moved > 50e6]
    assert expert_gemms
    memory_bound = sum(1 for p in expert_gemms
                       if p.regime is KernelRegime.MEMORY_BOUND)
    assert memory_bound > 0.9 * len(expert_gemms)


def test_moe_grace_dispatch_is_the_gh200_bottleneck(intel_profiler,
                                                    gh200_profiler):
    """~2850 dispatches per pass turn GH200's CPU into the wall: despite 2x
    the memory bandwidth (which should win a weight-streaming workload),
    GH200 loses eager Mixtral at BS=1 because Grace cannot issue operators
    fast enough — the paper's Section V-D argument at its most extreme."""
    from repro.skip import Boundedness, classify_metrics
    intel = intel_profiler.profile(MIXTRAL_8X7B, batch_size=1, seq_len=128)
    gh200 = gh200_profiler.profile(MIXTRAL_8X7B, batch_size=1, seq_len=128)
    assert classify_metrics(gh200.metrics) is Boundedness.CPU_BOUND
    assert (gh200.metrics.inference_latency_ns
            > 1.5 * intel.metrics.inference_latency_ns)