"""SkipProfiler — the library's front door.

Mirrors the paper's workflow: run inference under a profiler, build the
operator-kernel dependency graph, compute the kernel metrics, classify
boundedness, and recommend fusions. The profiler accepts either a (model,
platform) pair — in which case the engine simulates the run — or an existing
trace (e.g. imported from a real PyTorch Profiler Chrome trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.executor import DEFAULT_CONFIG, EngineConfig, RunResult, run
from repro.engine.pp import PPConfig
from repro.engine.tp import TPConfig
from repro.engine.fusion_apply import FusionPlan
from repro.engine.modes import ExecutionMode
from repro.hardware.platform import Platform
from repro.sim.causality import CausalityLog
from repro.skip.classify import Boundedness, classify_metrics
from repro.skip.depgraph import DependencyGraph
from repro.skip.fusion import DEFAULT_CHAIN_LENGTHS, FusionAnalysis, analyze_trace
from repro.skip.metrics import SkipMetrics, compute_metrics, metrics_from_tape
from repro.trace.trace import Trace
from repro.workloads.config import ModelConfig
from repro.workloads.graph import Phase


@dataclass
class ProfileResult:
    """Everything SKIP derives from one profiled run."""

    trace: Trace
    depgraph: DependencyGraph
    metrics: SkipMetrics
    run_result: RunResult | None = None

    @property
    def boundedness(self) -> Boundedness:
        """Trace-only CPU/GPU-bound classification."""
        return classify_metrics(self.metrics)

    def recommend_fusions(
        self,
        lengths: Sequence[int] = DEFAULT_CHAIN_LENGTHS,
        threshold: float = 1.0,
    ) -> list[FusionAnalysis]:
        """Proximity-score fusion recommendations for this trace."""
        return analyze_trace(self.trace, lengths, threshold)

    def fusion_plan(
        self,
        lengths: Sequence[int] = DEFAULT_CHAIN_LENGTHS,
        threshold: float = 1.0,
    ) -> FusionPlan | None:
        """The best single-length plan (highest idealized speedup)."""
        analyses = self.recommend_fusions(lengths, threshold)
        best = max(analyses, key=lambda a: a.ideal_speedup)
        return best.plan()


class SkipProfiler:
    """System-aware Kernel Inference Profiler (simulation-backed).

    Example:
        >>> from repro.hardware import GH200
        >>> from repro.workloads import LLAMA_3_2_1B
        >>> profiler = SkipProfiler(GH200)
        >>> result = profiler.profile(LLAMA_3_2_1B, batch_size=8)
        >>> result.metrics.tklqt_ns > 0
        True
    """

    def __init__(self, platform: Platform,
                 engine_config: EngineConfig = DEFAULT_CONFIG) -> None:
        self.platform = platform
        self.engine_config = engine_config

    def profile(
        self,
        model: ModelConfig,
        batch_size: int = 1,
        seq_len: int = 512,
        mode: ExecutionMode = ExecutionMode.EAGER,
        phase: Phase = Phase.PREFILL,
        context_len: int | None = None,
        fusion_plan: FusionPlan | None = None,
        tp: TPConfig | None = None,
        pp: PPConfig | None = None,
        causality: CausalityLog | None = None,
    ) -> ProfileResult:
        """Simulate a run on this profiler's platform and analyze its trace."""
        run_result = run(
            model,
            self.platform,
            batch_size=batch_size,
            seq_len=seq_len,
            mode=mode,
            phase=phase,
            context_len=context_len,
            config=self.engine_config,
            fusion_plan=fusion_plan,
            tp=tp,
            pp=pp,
            causality=causality,
        )
        return self.analyze(run_result.trace, run_result)

    def profile_metrics(
        self,
        model: ModelConfig,
        batch_size: int = 1,
        seq_len: int = 512,
        mode: ExecutionMode = ExecutionMode.EAGER,
        phase: Phase = Phase.PREFILL,
        context_len: int | None = None,
        fusion_plan: FusionPlan | None = None,
        tp: TPConfig | None = None,
        pp: PPConfig | None = None,
    ) -> SkipMetrics:
        """Metrics-only fast path: no trace, no dependency graph.

        Runs the engine in tape mode and computes SKIP metrics directly
        from the tape — **bit-identical** to ``profile(...).metrics`` (the
        parity suite locks this), at a fraction of the cost. Sweeps and
        serving latency lookups, which discard everything but the metrics,
        go through here.
        """
        run_result = run(
            model,
            self.platform,
            batch_size=batch_size,
            seq_len=seq_len,
            mode=mode,
            phase=phase,
            context_len=context_len,
            config=self.engine_config,
            fusion_plan=fusion_plan,
            tp=tp,
            pp=pp,
            tape=True,
        )
        assert run_result.tape is not None
        return metrics_from_tape(run_result.tape)

    def profile_graph(
        self,
        graph,
        mode: ExecutionMode = ExecutionMode.EAGER,
        fusion_plan: FusionPlan | None = None,
    ) -> ProfileResult:
        """Simulate and analyze a prebuilt operator graph.

        Lets non-Transformer workloads (DLRM, GCN, hand-built streams) go
        through the same profiling pipeline as the cataloged models.
        """
        run_result = run(graph, self.platform, mode=mode,
                         config=self.engine_config, fusion_plan=fusion_plan)
        return self.analyze(run_result.trace, run_result)

    @staticmethod
    def analyze(trace: Trace, run_result: RunResult | None = None) -> ProfileResult:
        """Analyze an existing trace (simulated or imported)."""
        depgraph = DependencyGraph.from_trace(trace)
        metrics = compute_metrics(trace, depgraph)
        return ProfileResult(trace=trace, depgraph=depgraph, metrics=metrics,
                             run_result=run_result)
