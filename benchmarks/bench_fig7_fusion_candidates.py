"""Fig. 7 — scalable kernel-fusion recommendation metrics from SKIP during
prefill on Intel+H100 (GPT-2 and XLM-RoBERTa, both CPU-bound at these
batch sizes).

Four panels: (a) unique fusion chains per (batch, length); (b) total chain
instances; (c) kernels fused at PS=1; (d) eager kernel launches K_eager.
"""

from _harness import BENCH_ENGINE, report, run_once
from repro.engine import run
from repro.hardware import INTEL_H100
from repro.skip import analyze_trace
from repro.viz import render_table
from repro.workloads import GPT2, XLM_ROBERTA_BASE

BATCHES = (1, 4, 16, 64)
LENGTHS = (2, 4, 8, 16, 32, 64, 128, 256)


def _analyze(model):
    per_batch = {}
    for batch in BATCHES:
        result = run(model, INTEL_H100, batch_size=batch, seq_len=512,
                     config=BENCH_ENGINE)
        per_batch[batch] = analyze_trace(result.trace, lengths=LENGTHS)
    return per_batch


def _render(model_name, per_batch):
    panels = {
        "(a) unique chains": lambda a: a.unique_candidates,
        "(b) total instances": lambda a: a.total_instances,
        "(c) kernels fused (PS=1)": lambda a: int(a.kernels_fused),
        "(d) K_eager": lambda a: int(a.k_eager),
    }
    blocks = []
    for title, extract in panels.items():
        rows = []
        for batch, analyses in per_batch.items():
            rows.append([f"BS={batch}", *[extract(a) for a in analyses]])
        blocks.append(render_table(
            ["batch \\ L", *[str(length) for length in LENGTHS]], rows,
            title=f"Fig. 7{title[1]} {title[4:]}: {model_name}"))
    report("\n\n".join(blocks))


def _check(per_batch):
    for batch, analyses in per_batch.items():
        totals = [a.total_instances for a in analyses]
        # (b): total instances shrink as the chain length grows.
        assert totals == sorted(totals, reverse=True)
        # (d): K_eager is batch-invariant for prefill.
        assert analyses[0].k_eager == per_batch[BATCHES[0]][0].k_eager
        # (c): long chains fuse only a few non-overlapping candidates.
        assert analyses[-1].fused_chain_count <= 3


def test_fig7_gpt2_candidates(benchmark):
    per_batch = run_once(benchmark, _analyze, GPT2)
    _render("gpt2", per_batch)
    _check(per_batch)


def test_fig7_xlmr_candidates(benchmark):
    per_batch = run_once(benchmark, _analyze, XLM_ROBERTA_BASE)
    _render("xlm-roberta-base", per_batch)
    _check(per_batch)
