"""Framework operators and their arithmetic/memory work.

An :class:`Op` is one framework-level operator at ATen granularity — the unit
the CPU dispatches in eager mode. Each op carries:

* its FLOP count and DRAM traffic (FP16 tensors), which the engine's roofline
  turns into kernel durations;
* ``dims``, a kind-specific shape signature used by the lowering to choose a
  kernel *variant name* (real cuBLAS picks different tiled kernels for
  different problem shapes, which is why the paper's unique-chain counts vary
  with batch size);
* a reference CPU dispatch cost, scaled by the platform's CPU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Bytes per element for the FP16 models used throughout the paper.
FP16_BYTES = 2


class OpKind(enum.Enum):
    """ATen-level operator kinds the graph builder emits."""

    EMBEDDING = "embedding"
    LINEAR = "linear"
    MATMUL = "matmul"
    SOFTMAX = "softmax"
    LAYERNORM = "layernorm"
    RMSNORM = "rmsnorm"
    GELU = "gelu"
    SILU = "silu"
    TANH = "tanh"
    ADD = "add"
    MUL = "mul"
    SCALE = "scale"
    MASKED_FILL = "masked_fill"
    FILL = "fill"
    TRANSPOSE = "transpose"
    RESHAPE_COPY = "reshape_copy"
    SPLIT = "split"
    ROPE = "rope"
    CAST = "cast"
    KV_APPEND = "kv_append"
    TOPK = "topk"
    INDEX_SELECT = "index_select"
    SCATTER_ADD = "scatter_add"
    SDPA_FLASH = "sdpa_flash"
    ALL_REDUCE = "all_reduce"
    GRAPH_REPLAY = "graph_replay"


#: ATen operator name for each kind (what appears in traces).
ATEN_NAMES: dict[OpKind, str] = {
    OpKind.EMBEDDING: "aten::embedding",
    OpKind.LINEAR: "aten::linear",
    OpKind.MATMUL: "aten::matmul",
    OpKind.SOFTMAX: "aten::softmax",
    OpKind.LAYERNORM: "aten::layer_norm",
    OpKind.RMSNORM: "aten::rms_norm",
    OpKind.GELU: "aten::gelu",
    OpKind.SILU: "aten::silu",
    OpKind.TANH: "aten::tanh",
    OpKind.ADD: "aten::add",
    OpKind.MUL: "aten::mul",
    OpKind.SCALE: "aten::div",
    OpKind.MASKED_FILL: "aten::masked_fill",
    OpKind.FILL: "aten::full",
    OpKind.TRANSPOSE: "aten::transpose",
    OpKind.RESHAPE_COPY: "aten::contiguous",
    OpKind.SPLIT: "aten::split",
    OpKind.ROPE: "aten::mul_rope",
    OpKind.CAST: "aten::to",
    OpKind.KV_APPEND: "aten::index_copy_",
    OpKind.TOPK: "aten::topk",
    OpKind.INDEX_SELECT: "aten::index_select",
    OpKind.SCATTER_ADD: "aten::index_add_",
    OpKind.SDPA_FLASH: "aten::scaled_dot_product_attention",
    OpKind.ALL_REDUCE: "c10d::allreduce_",
    OpKind.GRAPH_REPLAY: "cuda_graph::replay",
}

#: Reference CPU dispatch cost per operator kind, in nanoseconds on the
#: reference CPU (Intel Xeon 8468V). Values reflect relative eager-PyTorch
#: per-op overheads: ops that hit cuBLAS heuristics or build metadata cost
#: more than simple elementwise dispatches.
DISPATCH_COST_NS: dict[OpKind, float] = {
    OpKind.EMBEDDING: 17000.0,
    OpKind.LINEAR: 23000.0,
    OpKind.MATMUL: 21000.0,
    OpKind.SOFTMAX: 14500.0,
    OpKind.LAYERNORM: 17000.0,
    OpKind.RMSNORM: 16000.0,
    OpKind.GELU: 11000.0,
    OpKind.SILU: 11000.0,
    OpKind.TANH: 10000.0,
    OpKind.ADD: 11000.0,
    OpKind.MUL: 11000.0,
    OpKind.SCALE: 11000.0,
    OpKind.MASKED_FILL: 12000.0,
    OpKind.FILL: 7500.0,
    OpKind.TRANSPOSE: 6000.0,
    OpKind.RESHAPE_COPY: 8500.0,
    OpKind.SPLIT: 12000.0,
    OpKind.ROPE: 13500.0,
    OpKind.CAST: 8500.0,
    OpKind.KV_APPEND: 14500.0,
    OpKind.TOPK: 18000.0,
    OpKind.INDEX_SELECT: 13000.0,
    OpKind.SCATTER_ADD: 15000.0,
    OpKind.SDPA_FLASH: 27000.0,
    OpKind.ALL_REDUCE: 26000.0,
    OpKind.GRAPH_REPLAY: 15000.0,
}


@dataclass(frozen=True)
class Op:
    """One framework operator in program order.

    Attributes:
        kind: Operator kind.
        label: Module path ("layer3.attn.query") for reports.
        flops: Floating-point operations performed on the GPU.
        bytes_read / bytes_written: DRAM traffic in bytes (FP16).
        dims: Kind-specific shape signature (used for kernel variant naming).
        launches_kernel: False for metadata-only ops (pure views), which cost
            CPU dispatch but launch nothing.
        kernel_fanout: Number of elementwise kernels the eager lowering emits
            for this op. Composite activations (GPT-2's tanh-approximated
            ``gelu_new``) and rotary embeddings expand to several elementwise
            kernels in eager mode; each emitted kernel re-reads/re-writes the
            tensor, so traffic accounting multiplies by the fanout.
    """

    kind: OpKind
    label: str
    flops: float
    bytes_read: float
    bytes_written: float
    dims: tuple[int, ...]
    launches_kernel: bool = True
    kernel_fanout: int = 1

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ConfigurationError(f"{self.label}: work must be non-negative")
        if self.kernel_fanout < 1:
            raise ConfigurationError(f"{self.label}: kernel_fanout must be >= 1")
        if not self.launches_kernel and self.kernel_fanout != 1:
            raise ConfigurationError(f"{self.label}: fanout on a no-kernel op")

    @property
    def aten_name(self) -> str:
        """The operator name as it appears in the trace."""
        return ATEN_NAMES[self.kind]

    @property
    def dispatch_cost_ns(self) -> float:
        """Reference CPU dispatch cost for this operator."""
        return DISPATCH_COST_NS[self.kind]

    @property
    def bytes_moved(self) -> float:
        """Total DRAM traffic."""
        return self.bytes_read + self.bytes_written


# ---------------------------------------------------------------------------
# Op factories (shape -> work accounting)
# ---------------------------------------------------------------------------

def linear(label: str, tokens: int, in_features: int, out_features: int,
           bias: bool = True) -> Op:
    """A dense projection over ``tokens`` rows."""
    _check_positive(tokens=tokens, in_features=in_features, out_features=out_features)
    flops = 2.0 * tokens * in_features * out_features
    if bias:
        flops += float(tokens * out_features)
    bytes_read = FP16_BYTES * (tokens * in_features + in_features * out_features
                               + (out_features if bias else 0))
    bytes_written = FP16_BYTES * tokens * out_features
    return Op(OpKind.LINEAR, label, flops, bytes_read, bytes_written,
              dims=(in_features, out_features, 1 if bias else 0, tokens))


def matmul(label: str, batch: int, m: int, n: int, k: int) -> Op:
    """A batched matrix multiply (attention scores / context)."""
    _check_positive(batch=batch, m=m, n=n, k=k)
    flops = 2.0 * batch * m * n * k
    bytes_read = FP16_BYTES * batch * (m * k + k * n)
    bytes_written = FP16_BYTES * batch * m * n
    return Op(OpKind.MATMUL, label, flops, bytes_read, bytes_written, dims=(m, n, k))


def softmax(label: str, rows: int, cols: int) -> Op:
    """Row-wise softmax (attention probabilities)."""
    _check_positive(rows=rows, cols=cols)
    elements = rows * cols
    return Op(OpKind.SOFTMAX, label, 5.0 * elements,
              FP16_BYTES * elements, FP16_BYTES * elements, dims=(cols,))


def layernorm(label: str, tokens: int, hidden: int) -> Op:
    """LayerNorm over the hidden dimension."""
    _check_positive(tokens=tokens, hidden=hidden)
    elements = tokens * hidden
    return Op(OpKind.LAYERNORM, label, 8.0 * elements,
              FP16_BYTES * (elements + 2 * hidden), FP16_BYTES * elements,
              dims=(hidden,))


def rmsnorm(label: str, tokens: int, hidden: int) -> Op:
    """RMSNorm over the hidden dimension (Llama-family)."""
    _check_positive(tokens=tokens, hidden=hidden)
    elements = tokens * hidden
    return Op(OpKind.RMSNORM, label, 6.0 * elements,
              FP16_BYTES * (elements + hidden), FP16_BYTES * elements,
              dims=(hidden,))


def elementwise(kind: OpKind, label: str, elements: int, inputs: int = 1,
                flops_per_element: float = 1.0, fanout: int = 1) -> Op:
    """A generic elementwise/unary/binary operator over ``elements``.

    ``fanout > 1`` models composite eager activations that expand to several
    elementwise kernels (each re-touching the tensor).
    """
    _check_positive(elements=elements, fanout=fanout)
    if kind not in (OpKind.GELU, OpKind.SILU, OpKind.TANH, OpKind.ADD, OpKind.MUL,
                    OpKind.SCALE, OpKind.MASKED_FILL, OpKind.CAST):
        raise ConfigurationError(f"{kind} is not an elementwise kind")
    return Op(kind, label, flops_per_element * elements * fanout,
              FP16_BYTES * elements * inputs * fanout,
              FP16_BYTES * elements * fanout,
              dims=(inputs,), kernel_fanout=fanout)


def fill(label: str, elements: int) -> Op:
    """Materialize a constant tensor (``aten::full``)."""
    _check_positive(elements=elements)
    return Op(OpKind.FILL, label, 0.0, 0.0, FP16_BYTES * elements, dims=())


def embedding(label: str, tokens: int, hidden: int,
              num_embeddings: int = 32768) -> Op:
    """Embedding-table gather.

    ``num_embeddings`` selects the CUDA index-select kernel variant (large
    vocabularies use a different kernel than small position/type tables).
    """
    _check_positive(tokens=tokens, hidden=hidden, num_embeddings=num_embeddings)
    elements = tokens * hidden
    return Op(OpKind.EMBEDDING, label, 0.0,
              FP16_BYTES * elements + 8.0 * tokens, FP16_BYTES * elements,
              dims=(hidden, num_embeddings))


def transpose_view(label: str, elements: int) -> Op:
    """A metadata-only view change (no kernel)."""
    _check_positive(elements=elements)
    return Op(OpKind.TRANSPOSE, label, 0.0, 0.0, 0.0, dims=(),
              launches_kernel=False)


def reshape_copy(label: str, elements: int) -> Op:
    """A layout change that materializes a copy kernel."""
    _check_positive(elements=elements)
    return Op(OpKind.RESHAPE_COPY, label, 0.0,
              FP16_BYTES * elements, FP16_BYTES * elements, dims=())


def split(label: str, elements: int, parts: int) -> Op:
    """Slice a fused projection into parts (one copy kernel per part)."""
    _check_positive(elements=elements, parts=parts)
    return Op(OpKind.SPLIT, label, 0.0,
              FP16_BYTES * elements, FP16_BYTES * elements, dims=(parts,))


def rope(label: str, tokens: int, dim: int, fanout: int = 3) -> Op:
    """Rotary position embedding applied to one projection.

    Eager HF rotary is ``q*cos + rotate_half(q)*sin`` — several elementwise
    kernels (``fanout``), each touching the tensor.
    """
    _check_positive(tokens=tokens, dim=dim, fanout=fanout)
    elements = tokens * dim
    return Op(OpKind.ROPE, label, 4.0 * elements,
              FP16_BYTES * 2 * elements * fanout, FP16_BYTES * elements * fanout,
              dims=(dim,), kernel_fanout=fanout)


def kv_append(label: str, tokens: int, dim: int) -> Op:
    """Append keys/values into the KV cache (decode phase)."""
    _check_positive(tokens=tokens, dim=dim)
    elements = tokens * dim
    return Op(OpKind.KV_APPEND, label, 0.0,
              FP16_BYTES * elements, FP16_BYTES * elements, dims=(dim,))


def sdpa_flash(label: str, batch_heads: int, q_len: int, kv_len: int,
               head_dim: int) -> Op:
    """Fused scaled-dot-product attention (FlashAttention-2 lowering).

    FLOPs equal the unfused attention; DRAM traffic drops to the Q/K/V/O
    tensors because the score matrix stays in SRAM (the paper's IO-awareness
    point in Section II-C).
    """
    _check_positive(batch_heads=batch_heads, q_len=q_len, kv_len=kv_len,
                    head_dim=head_dim)
    flops = 4.0 * batch_heads * q_len * kv_len * head_dim
    io_elements = batch_heads * (q_len + 2 * kv_len + q_len) * head_dim
    return Op(OpKind.SDPA_FLASH, label, flops,
              FP16_BYTES * io_elements * 0.75, FP16_BYTES * io_elements * 0.25,
              dims=(head_dim, kv_len))


def topk(label: str, rows: int, candidates: int, k: int) -> Op:
    """Row-wise top-k selection (MoE routing)."""
    _check_positive(rows=rows, candidates=candidates, k=k)
    elements = rows * candidates
    return Op(OpKind.TOPK, label, 3.0 * elements,
              FP16_BYTES * elements, FP16_BYTES * rows * k + 8.0 * rows * k,
              dims=(candidates, k))


def index_select(label: str, rows: int, dim: int) -> Op:
    """Gather ``rows`` vectors of width ``dim`` by index."""
    _check_positive(rows=rows, dim=dim)
    elements = rows * dim
    return Op(OpKind.INDEX_SELECT, label, 0.0,
              FP16_BYTES * elements + 8.0 * rows, FP16_BYTES * elements,
              dims=(dim,))


def scatter_add(label: str, rows: int, dim: int) -> Op:
    """Scatter-accumulate ``rows`` vectors back by index (MoE combine)."""
    _check_positive(rows=rows, dim=dim)
    elements = rows * dim
    return Op(OpKind.SCATTER_ADD, label, float(elements),
              FP16_BYTES * 2 * elements + 8.0 * rows, FP16_BYTES * elements,
              dims=(dim,))


def all_reduce(label: str, message_bytes: float, world: int) -> Op:
    """A c10d all-reduce over ``message_bytes`` across ``world`` ranks.

    Tensor-parallel lowerings insert these at layer boundaries (attention
    output projection, MLP down projection). FLOPs count the elementwise
    reductions a ring schedule performs; data movement over the GPU-GPU link
    is priced separately by the interconnect model, not the roofline.
    """
    _check_positive(world=world)
    if message_bytes <= 0:
        raise ConfigurationError(
            f"message_bytes must be positive, got {message_bytes}")
    elements = message_bytes / FP16_BYTES
    return Op(OpKind.ALL_REDUCE, label, float(elements),
              message_bytes, message_bytes, dims=(world,))


def _check_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")
