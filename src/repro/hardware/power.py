"""Power and energy accounting.

Table IV lists the paper's accelerators with their power classes (A100
500 W, H100 PCIe 350 W, GH200 module 900 W), and the kernel-fusion
literature it builds on ([47]) motivates fusion by energy savings. This
module attaches a simple activity-based power model to a profiled run:

``energy = P_busy * busy_time + P_idle * idle_time`` per processing unit,

which is enough to compare energy-per-inference and energy-per-token across
coupling paradigms and execution modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import AnalysisError, ConfigurationError
from repro.units import SEC

if TYPE_CHECKING:  # avoid a hardware -> skip -> engine -> hardware cycle
    from repro.skip.metrics import SkipMetrics


@dataclass(frozen=True)
class PowerModel:
    """Busy/idle power draw for one platform's PUs (watts)."""

    name: str
    gpu_busy_w: float
    gpu_idle_w: float
    cpu_busy_w: float
    cpu_idle_w: float

    def __post_init__(self) -> None:
        for field_name in ("gpu_busy_w", "gpu_idle_w", "cpu_busy_w",
                           "cpu_idle_w"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be non-negative")
        if self.gpu_idle_w > self.gpu_busy_w:
            raise ConfigurationError("gpu idle power exceeds busy power")
        if self.cpu_idle_w > self.cpu_busy_w:
            raise ConfigurationError("cpu idle power exceeds busy power")


#: Power classes from Table IV plus typical idle floors.
AMD_A100_POWER = PowerModel("AMD+A100", gpu_busy_w=500.0, gpu_idle_w=80.0,
                            cpu_busy_w=155.0, cpu_idle_w=65.0)
INTEL_H100_POWER = PowerModel("Intel+H100", gpu_busy_w=350.0, gpu_idle_w=70.0,
                              cpu_busy_w=330.0, cpu_idle_w=120.0)
GH200_POWER = PowerModel("GH200", gpu_busy_w=700.0, gpu_idle_w=90.0,
                         cpu_busy_w=200.0, cpu_idle_w=80.0)
MI300A_POWER = PowerModel("MI300A", gpu_busy_w=550.0, gpu_idle_w=90.0,
                          cpu_busy_w=0.0, cpu_idle_w=0.0)  # shared package

POWER_MODELS: dict[str, PowerModel] = {
    model.name: model
    for model in (AMD_A100_POWER, INTEL_H100_POWER, GH200_POWER, MI300A_POWER)
}


def get_power_model(platform_name: str) -> PowerModel:
    """Power model for a cataloged platform name."""
    try:
        return POWER_MODELS[platform_name]
    except KeyError:
        known = ", ".join(sorted(POWER_MODELS))
        raise ConfigurationError(
            f"no power model for {platform_name!r}; known: {known}") from None


@dataclass(frozen=True)
class EnergyReport:
    """Energy for one profiled iteration (averaged across iterations)."""

    platform: str
    gpu_energy_j: float
    cpu_energy_j: float
    inference_latency_ns: float

    @property
    def total_j(self) -> float:
        return self.gpu_energy_j + self.cpu_energy_j

    @property
    def average_power_w(self) -> float:
        return self.total_j / (self.inference_latency_ns / SEC)

    def energy_per_token_j(self, tokens: int) -> float:
        """Joules per processed token (prefill) or generated token (decode)."""
        if tokens <= 0:
            raise AnalysisError("tokens must be positive")
        return self.total_j / tokens


def energy_of(metrics: "SkipMetrics", power: PowerModel) -> EnergyReport:
    """Activity-based energy for one profiled run."""
    il_s = metrics.inference_latency_ns / SEC
    gpu_busy_s = metrics.gpu_busy_ns / SEC
    cpu_busy_s = min(metrics.cpu_busy_ns, metrics.inference_latency_ns) / SEC
    gpu_idle_s = max(0.0, il_s - gpu_busy_s)
    cpu_idle_s = max(0.0, il_s - cpu_busy_s)
    return EnergyReport(
        platform=power.name,
        gpu_energy_j=(power.gpu_busy_w * gpu_busy_s
                      + power.gpu_idle_w * gpu_idle_s),
        cpu_energy_j=(power.cpu_busy_w * cpu_busy_s
                      + power.cpu_idle_w * cpu_idle_s),
        inference_latency_ns=metrics.inference_latency_ns,
    )
