"""Discrete-event simulation core.

``repro.sim`` is the substrate the execution engine runs on: a deterministic
event queue (:mod:`repro.sim.queue`), named resources — CPU dispatch threads,
GPU devices with in-order streams, GPU<->GPU interconnect links
(:mod:`repro.sim.resources`) — and a process scheduler with rendezvous
synchronization for collectives (:mod:`repro.sim.core`).

The engine's execution modes are written as *processes* on this core
(:mod:`repro.engine.processes`); the core itself knows nothing about
operators, kernels, or traces, so new resource kinds (more streams per
device, heterogeneous devices, multi-link topologies) plug in without
touching the engine.

A core built with ``SimCore(causality=CausalityLog())`` additionally
records every scheduling decision — spawns, resumes with their tie-break
keys, rendezvous joins/releases, KV grants, stream occupancy — for the
offline happens-before pass (:mod:`repro.check.hb`). Logging off (the
default) is bit-identical to pre-causality behavior.
"""

from repro.sim.causality import CausalityEvent, CausalityLog
from repro.sim.core import Rendezvous, SimCore
from repro.sim.queue import EventQueue, PerturbedEventQueue, ReferenceEventQueue
from repro.sim.resources import (
    CpuThread,
    GpuDevice,
    LinkResource,
    StreamResource,
)

__all__ = [
    "CausalityEvent",
    "CausalityLog",
    "CpuThread",
    "EventQueue",
    "GpuDevice",
    "LinkResource",
    "PerturbedEventQueue",
    "ReferenceEventQueue",
    "Rendezvous",
    "SimCore",
    "StreamResource",
]
