"""Causality log: the happens-before record of one simulation run.

When a :class:`~repro.sim.core.SimCore` is constructed with
``causality=CausalityLog()``, it records every scheduling decision the run
makes — process spawns, event-queue pops (with their tie-break metadata),
suspensions, rendezvous joins/releases, KV ``acquire``/``release`` grants,
and stream/link occupancy intervals — as a flat, ordered stream of
:class:`CausalityEvent` records. The log is the *input* to the
happens-before race detector (:mod:`repro.check.hb`): from it the checker
rebuilds the run's causal order with vector clocks and certifies that
outcomes never hinged on an event-queue tie.

Logging is strictly opt-in and observational: with ``causality=None``
(the default everywhere) the core takes its unmodified fast path and the
run is bit-identical to one on a core that predates this module — the
parity tests in ``tests/sim/test_causality.py`` lock that.

Event vocabulary (``CausalityEvent.kind``):

========== ==================================================================
``spawn``   process ``pid`` scheduled to start at ``time_ns`` (``src`` is the
            spawning pid when a running process spawned it, else -1)
``resume``  the event queue popped ``pid`` at ``time_ns``; ``tie`` carries
            the queue's monotone tie-break sequence number
``suspend`` ``pid`` yielded a request (``key`` = verb) resuming no earlier
            than ``time_ns``
``exit``    ``pid`` ran to completion (StopIteration)
``join``    ``pid`` joined rendezvous ``key`` (``parties``) ready at
            ``time_ns``
``release`` rendezvous ``key`` completed; all parties release at ``time_ns``
``wake``    waiter ``pid`` of rendezvous ``key`` was rescheduled for
            ``time_ns`` (``src`` = the pid whose join completed the
            rendezvous)
``acquire`` ``pid`` requested ``blocks`` KV blocks on resource ``key`` for
            ``owner``
``grant``   resource ``key`` granted ``blocks`` to ``owner`` (process
            ``pid``) effective ``time_ns``
``free``    ``owner`` released ``blocks`` blocks on resource ``key`` at
            ``time_ns``
``occupy``  resource ``key`` (a stream or the link) was occupied over
            ``[time_ns, end_ns)`` by work issued from ``pid``
``resource`` declaration: resource ``key`` exists with ``blocks`` capacity
========== ==================================================================
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Hashable

from repro.errors import AnalysisError

#: Schema tag written into every exported causality sidecar.
CAUSALITY_SCHEMA = "repro.causality/v1"

#: Every kind a :class:`CausalityEvent` may carry (see module docstring).
EVENT_KINDS = frozenset({
    "spawn", "resume", "suspend", "exit", "join", "release", "wake",
    "acquire", "grant", "free", "occupy", "resource",
})


@dataclass(frozen=True, slots=True)
class CausalityEvent:
    """One entry in a run's causality log.

    Attributes:
        seq: Global log position (strictly increasing within one run).
        kind: Event vocabulary entry (see module docstring).
        time_ns: The simulated instant the event is effective at.
        pid: The process the event belongs to (-1 for core-level events).
        src: The pid that *caused* the event when it differs from ``pid``
            (the releasing joiner for a ``wake``, the granting releaser for
            a post-release ``grant``, the spawner for a runtime ``spawn``);
            -1 when the event is self-caused.
        key: Rendezvous key, resource name, or stream label.
        owner: Resource owner for ``acquire``/``grant``/``free``.
        blocks: Block count (or resource capacity for ``resource``).
        parties: Rendezvous party count for ``join``/``release``.
        tie: Event-queue tie-break sequence for ``resume`` pops (None when
            the queue exposed no tie metadata — itself an H002 hazard).
        end_ns: Interval end for ``occupy`` events (None otherwise).
    """

    seq: int
    kind: str
    time_ns: float
    pid: int = -1
    src: int = -1
    key: str = ""
    owner: str = ""
    blocks: int = 0
    parties: int = 0
    tie: int | None = None
    end_ns: float | None = None


def _key_str(key: Hashable) -> str:
    """Stable string form of a rendezvous key or owner id."""
    return key if isinstance(key, str) else repr(key)


class CausalityLog:
    """Collects :class:`CausalityEvent` records for one simulation run.

    One log belongs to one :class:`~repro.sim.core.SimCore`; process ids
    are assigned densely in first-appearance order, which is spawn order
    for every process the core runs — so two bit-identical runs produce
    logs with identical pid assignments.
    """

    def __init__(self) -> None:
        self.events: list[CausalityEvent] = []
        #: The pid of the process the core is currently stepping; resources
        #: read this to attribute synchronous accesses (stream submits, KV
        #: try-acquires) performed between yields.
        self.current_pid: int = -1
        self._seq = 0
        self._pids: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.events)

    # -- pid bookkeeping -------------------------------------------------
    def pid_of(self, process: Any) -> int:
        """The stable pid for ``process``, assigned on first sight."""
        key = id(process)
        pid = self._pids.get(key)
        if pid is None:
            pid = len(self._pids)
            self._pids[key] = pid
        return pid

    # -- low-level emit --------------------------------------------------
    def emit(self, kind: str, time_ns: float, pid: int = -1, *,
             src: int = -1, key: str = "", owner: str = "", blocks: int = 0,
             parties: int = 0, tie: int | None = None,
             end_ns: float | None = None) -> CausalityEvent:
        event = CausalityEvent(
            seq=self._seq, kind=kind, time_ns=time_ns, pid=pid, src=src,
            key=key, owner=owner, blocks=blocks, parties=parties, tie=tie,
            end_ns=end_ns)
        self._seq += 1
        self.events.append(event)
        return event

    # -- scheduling events (emitted by SimCore) --------------------------
    def spawn(self, process: Any, at_ns: float) -> None:
        self.emit("spawn", at_ns, self.pid_of(process), src=self.current_pid)

    def resume(self, process: Any, time_ns: float, tie: int | None) -> None:
        self.emit("resume", time_ns, self.pid_of(process), tie=tie)

    def suspend(self, process: Any, time_ns: float, verb: str) -> None:
        self.emit("suspend", time_ns, self.pid_of(process), key=verb)

    def exit(self, process: Any, time_ns: float) -> None:
        self.emit("exit", time_ns, self.pid_of(process))

    def join(self, process: Any, key: Hashable, parties: int,
             ready_ns: float) -> None:
        self.emit("join", ready_ns, self.pid_of(process),
                  key=_key_str(key), parties=parties)

    def release(self, process: Any, key: Hashable, parties: int,
                release_ns: float) -> None:
        self.emit("release", release_ns, self.pid_of(process),
                  key=_key_str(key), parties=parties)

    def wake(self, waiter: Any, key: Hashable, release_ns: float) -> None:
        self.emit("wake", release_ns, self.pid_of(waiter),
                  src=self.current_pid, key=_key_str(key))

    # -- resource events (emitted by KvCacheResource / stream / link) ----
    def resource(self, name: str, capacity_blocks: int) -> None:
        self.emit("resource", 0.0, key=name, blocks=capacity_blocks)

    def acquire(self, pid: int, name: str, owner: Hashable, blocks: int,
                ready_ns: float) -> None:
        self.emit("acquire", ready_ns, pid, key=name,
                  owner=_key_str(owner), blocks=blocks)

    def grant(self, pid: int, name: str, owner: Hashable, blocks: int,
              grant_ns: float) -> None:
        self.emit("grant", grant_ns, pid, src=self.current_pid, key=name,
                  owner=_key_str(owner), blocks=blocks)

    def free(self, pid: int, name: str, owner: Hashable, blocks: int,
             ready_ns: float) -> None:
        self.emit("free", ready_ns, pid, key=name,
                  owner=_key_str(owner), blocks=blocks)

    def occupy(self, name: str, start_ns: float, end_ns: float) -> None:
        self.emit("occupy", start_ns, self.current_pid, key=name,
                  end_ns=end_ns)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": CAUSALITY_SCHEMA,
            "processes": len(self._pids),
            "events": [asdict(event) for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CausalityLog":
        schema = payload.get("schema")
        if schema != CAUSALITY_SCHEMA:
            raise AnalysisError(
                f"not a causality log: schema {schema!r} "
                f"(expected {CAUSALITY_SCHEMA!r})")
        log = cls()
        pids: set[int] = set()
        for raw in payload.get("events", []):
            try:
                event = CausalityEvent(**raw)
            except TypeError as exc:
                raise AnalysisError(f"malformed causality event: {exc}")
            if event.kind not in EVENT_KINDS:
                raise AnalysisError(
                    f"unknown causality event kind: {event.kind!r}")
            log.events.append(event)
            if event.pid >= 0:
                pids.add(event.pid)
        log._seq = (log.events[-1].seq + 1) if log.events else 0
        log._pids = {pid: pid for pid in sorted(pids)}
        return log

    def dump(self, path: str | Path) -> None:
        """Write the log as the JSON causality sidecar."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "CausalityLog":
        """Read a causality sidecar written by :meth:`dump`."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"cannot read causality log {path}: {exc}")
        if not isinstance(payload, dict):
            raise AnalysisError(f"not a causality log: {path}")
        return cls.from_dict(payload)
