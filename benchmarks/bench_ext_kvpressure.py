"""Extension — KV-cache pressure vs CPU-GPU coupling.

Shrink the paged KV pool until the serving loop must offload blocks to host
memory, and the interconnect becomes the bottleneck the paper's coupling
taxonomy predicts: A100 pays PCIe Gen4 prices per swapped block while GH200
pays NVLink-C2C prices, so delivered tokens/s diverges as the pool tightens.
"""

from _harness import report, run_once
from repro.analysis import run_kv_pressure_sweep
from repro.hardware import get_platform
from repro.kvcache import KvPolicy
from repro.viz import render_table
from repro.workloads import GPT2
from tests.scenarios import MAX_ACTIVE, POOL_GIB, PRESSURE

PLATFORMS = (get_platform("AMD+A100"), get_platform("GH200"))
POOLS_GIB = (0.08, 0.06, POOL_GIB)


def _sweep():
    return run_kv_pressure_sweep(
        GPT2, PLATFORMS, pool_gib=POOLS_GIB, policies=(KvPolicy.OFFLOAD,),
        max_active=MAX_ACTIVE, **PRESSURE)


def test_ext_kv_pressure_coupling(benchmark):
    result = run_once(benchmark, _sweep)
    rows = []
    for pool in POOLS_GIB:
        a100 = result.point("AMD+A100", KvPolicy.OFFLOAD, pool)
        gh200 = result.point("GH200", KvPolicy.OFFLOAD, pool)
        rows.append([
            f"{pool:g}",
            f"{a100.tokens_per_s:.0f}",
            f"{a100.swap_out_events}+{a100.swap_in_events}",
            f"{gh200.tokens_per_s:.0f}",
            f"{gh200.swap_out_events}+{gh200.swap_in_events}",
            f"{gh200.tokens_per_s / a100.tokens_per_s:.2f}x",
        ])
    report(render_table(
        ["pool (GiB)", "A100 tok/s", "A100 swaps", "GH200 tok/s",
         "GH200 swaps", "GH200 adv"],
        rows, title="Extension: GPT-2 offload under KV pressure, "
                    "compiled decode, 40 req/s"))

    tightest = POOLS_GIB[-1]
    a100 = result.point("AMD+A100", KvPolicy.OFFLOAD, tightest)
    gh200 = result.point("GH200", KvPolicy.OFFLOAD, tightest)
    # The tightest pool must actually pressure both platforms, and the
    # closely-coupled link must win on delivered throughput.
    assert a100.pressured and gh200.pressured
    assert gh200.tokens_per_s > a100.tokens_per_s
