"""Time and size units used throughout the library.

All timestamps and durations in traces are integer/float nanoseconds, matching
the resolution of CUPTI events that the paper's SKIP tool consumes. These
helpers keep unit conversions explicit at API boundaries.
"""

from __future__ import annotations

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SEC = 1_000_000_000.0

KB = 1_024.0
MB = 1_024.0**2
GB = 1_024.0**3

GIGA = 1e9
TERA = 1e12


def ns_to_us(value_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return value_ns / US


def ns_to_ms(value_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return value_ns / MS


def ns_to_s(value_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return value_ns / SEC


def us_to_ns(value_us: float) -> float:
    """Convert microseconds to nanoseconds."""
    return value_us * US


def ms_to_ns(value_ms: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return value_ms * MS


def s_to_ns(value_s: float) -> float:
    """Convert seconds to nanoseconds."""
    return value_s * SEC


def gib_to_bytes(value_gib: float) -> int:
    """Convert GiB to whole bytes (floored).

    Capacity arithmetic (HBM pools, runtime reserves) works on integer byte
    counts so downstream block math never compares floats for equality.
    """
    return int(value_gib * GB)


def format_ns(value_ns: float) -> str:
    """Render a nanosecond duration with a human-friendly unit.

    >>> format_ns(1500)
    '1.50 us'
    >>> format_ns(2_500_000)
    '2.50 ms'
    """
    if value_ns < US:
        return f"{value_ns:.1f} ns"
    if value_ns < MS:
        return f"{value_ns / US:.2f} us"
    if value_ns < SEC:
        return f"{value_ns / MS:.2f} ms"
    return f"{value_ns / SEC:.3f} s"


def format_bytes(value_bytes: float) -> str:
    """Render a byte count with a human-friendly unit."""
    if value_bytes < KB:
        return f"{value_bytes:.0f} B"
    if value_bytes < MB:
        return f"{value_bytes / KB:.2f} KiB"
    if value_bytes < GB:
        return f"{value_bytes / MB:.2f} MiB"
    return f"{value_bytes / GB:.2f} GiB"
