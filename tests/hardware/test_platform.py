"""Platform composition and derived launch costs."""

import pytest

from repro.hardware import AMD_A100, GH200, INTEL_H100, MI300A
from repro.hardware.platform import DRIVER_LAUNCH_NS


def test_launch_latency_decomposition():
    for platform in (AMD_A100, INTEL_H100, GH200):
        expected = (platform.cpu.runtime_call_ns + DRIVER_LAUNCH_NS
                    + platform.interconnect.submission_ns)
        assert platform.launch_latency_ns == pytest.approx(expected)


def test_launch_call_cpu_share():
    assert INTEL_H100.launch_call_cpu_ns == pytest.approx(
        INTEL_H100.cpu.runtime_call_ns)


def test_dispatch_delegates_to_cpu():
    assert GH200.dispatch_ns(10_000) == pytest.approx(
        GH200.cpu.dispatch_ns(10_000))


def test_kernel_duration_delegates_to_gpu():
    assert INTEL_H100.kernel_duration_ns(1e9, 1e6) == pytest.approx(
        INTEL_H100.gpu.kernel_duration_ns(1e9, 1e6))


def test_tightly_coupled_transfer_is_base_latency_only():
    big = 1 << 30
    assert MI300A.transfer_ns(big) == MI300A.interconnect.base_latency_ns
    assert INTEL_H100.transfer_ns(big) > INTEL_H100.interconnect.base_latency_ns


def test_summary_mentions_coupling_and_parts():
    text = GH200.summary()
    assert "CC" in text and "Grace" in text and "NVLink" in text
