"""R-rules: routing conservation, session affinity, COW refcount replay."""

from repro.check import check_cluster_metadata, check_kv_events
from repro.hardware import get_platform
from repro.kvcache import KvCacheEvent
from repro.obs import RunRecorder

from tests.scenarios import cluster_run

GH200 = get_platform("GH200")


def _meta(policy="round-robin", request_ids=(0, 1, 2), events=()):
    return {"policy": policy, "replicas": 2,
            "request_ids": list(request_ids), "events": list(events)}


def _routed(request_id, replica, session=None):
    return {"request_id": request_id, "replica": replica,
            "ts_ns": float(request_id), "session": session, "tenant": None}


def _rule_ids(findings):
    return {f.rule_id for f in findings}


# ----------------------------------------------------------------------
# R001 — conservation
# ----------------------------------------------------------------------
def test_clean_routing_log_has_no_findings():
    meta = _meta(events=[_routed(0, 0), _routed(1, 1), _routed(2, 0)])
    assert check_cluster_metadata(meta) == []
    assert check_cluster_metadata(_meta(request_ids=[], events=[])) == []


def test_r001_double_admitted_request():
    meta = _meta(events=[_routed(0, 0), _routed(0, 1),
                         _routed(1, 1), _routed(2, 0)])
    findings = check_cluster_metadata(meta)
    assert _rule_ids(findings) == {"R001"}
    assert "2 replicas" in findings[0].message


def test_r001_dropped_request():
    meta = _meta(events=[_routed(0, 0), _routed(1, 1)])   # id 2 never routed
    findings = check_cluster_metadata(meta)
    assert _rule_ids(findings) == {"R001"}
    assert "never admitted" in findings[0].message


# ----------------------------------------------------------------------
# R002 — session affinity (only under the session policy)
# ----------------------------------------------------------------------
def test_r002_session_split_across_replicas():
    events = [_routed(0, 0, session="s0"), _routed(1, 1, session="s0"),
              _routed(2, 0, session="s1")]
    findings = check_cluster_metadata(_meta(policy="session", events=events))
    assert _rule_ids(findings) == {"R002"}
    assert "s0" in findings[0].message
    # The same placement is legal under any non-affinity policy.
    assert check_cluster_metadata(
        _meta(policy="least-loaded", events=events)) == []


# ----------------------------------------------------------------------
# R003 — COW refcount lifecycle (replayed by the KV pass)
# ----------------------------------------------------------------------
def _prefix(kind, key, blocks, allocated, refs):
    return KvCacheEvent(ts_ns=0.0, kind=kind, seq=key, blocks=blocks,
                        allocated=allocated, refs=refs)


def test_r003_double_free():
    log = [_prefix("prefix_alloc", 7, 4, 4, 1),
           _prefix("prefix_deref", 7, 0, 4, 0),
           _prefix("prefix_deref", 7, 0, 4, 0),       # refcount already 0
           _prefix("prefix_free", 7, 4, 0, 0)]
    findings = check_kv_events(log, capacity_blocks=16)
    assert _rule_ids(findings) == {"R003"}
    assert "double free" in findings[0].message


def test_r003_free_while_shared():
    log = [_prefix("prefix_alloc", 7, 4, 4, 1),
           _prefix("prefix_free", 7, 4, 0, 1)]        # a holder still reads
    findings = check_kv_events(log, capacity_blocks=16)
    assert _rule_ids(findings) == {"R003"}
    assert "free-while-shared" in findings[0].message


def test_r003_ref_of_unknown_group():
    log = [_prefix("prefix_ref", 9, 0, 0, 1)]
    findings = check_kv_events(log, capacity_blocks=16)
    assert _rule_ids(findings) == {"R003"}
    assert "unknown shared group" in findings[0].message


# ----------------------------------------------------------------------
# The rules stay quiet on real cluster runs
# ----------------------------------------------------------------------
def _exported_cluster_meta(recorder):
    # Exactly the dict repro.obs.export writes into trace metadata.
    return {**recorder.cluster_meta,
            "events": [dict(event) for event in recorder.routing]}


def test_real_cluster_run_replays_clean():
    recorder = RunRecorder()
    requests, result = cluster_run(GH200, recorder=recorder)
    assert recorder.cluster_meta["replicas"] == result.router.replicas
    assert len(recorder.routing) == len(requests)
    assert check_cluster_metadata(_exported_cluster_meta(recorder)) == []


def test_real_session_routed_run_replays_clean():
    recorder = RunRecorder()
    _, result = cluster_run(GH200, router="session", recorder=recorder)
    assert result.router.sessions > 0
    assert check_cluster_metadata(_exported_cluster_meta(recorder)) == []
