"""Architectural what-if analysis."""

import pytest

from repro.analysis import (
    latency_at,
    latency_vs_cpu_scale,
    required_cpu_speedup,
    scaled_platform,
)
from repro.engine import EngineConfig
from repro.errors import AnalysisError
from repro.hardware import GH200, INTEL_H100
from repro.workloads import BERT_BASE, GPT2

FAST = EngineConfig(iterations=1)


def test_scaled_platform_speeds_up_cpu():
    doubled = scaled_platform(GH200, cpu_dispatch_scale=2.0)
    assert doubled.cpu.dispatch_score == pytest.approx(
        2 * GH200.cpu.dispatch_score)
    assert doubled.name == "GH200*"
    # original untouched (frozen dataclasses)
    assert GH200.cpu.dispatch_score < doubled.cpu.dispatch_score


def test_scaled_platform_launch_latency_shrinks():
    faster = scaled_platform(GH200, cpu_runtime_call_scale=2.0)
    assert faster.launch_latency_ns < GH200.launch_latency_ns


def test_scaled_platform_validation():
    with pytest.raises(AnalysisError):
        scaled_platform(GH200, cpu_dispatch_scale=0.0)


def test_cpu_scale_reduces_cpu_bound_latency():
    curve = latency_vs_cpu_scale(BERT_BASE, GH200, scales=(1.0, 2.0, 4.0),
                                 batch_size=1, engine_config=FAST)
    latencies = [latency for _, latency in curve]
    assert latencies[0] > latencies[1] > latencies[2]


def test_cpu_scale_has_no_effect_when_gpu_bound():
    curve = latency_vs_cpu_scale(BERT_BASE, INTEL_H100, scales=(1.0, 4.0),
                                 batch_size=128, engine_config=FAST)
    assert curve[1][1] == pytest.approx(curve[0][1], rel=0.05)


def test_required_speedup_for_gh200_to_match_intel():
    """The paper's Grace bottleneck, quantified: GH200 needs roughly the
    dispatch-score gap (~2.7x) to match Intel+H100 at BS=1 for BERT."""
    requirement = required_cpu_speedup(BERT_BASE, GH200, INTEL_H100,
                                       batch_size=1, engine_config=FAST)
    assert 2.0 < requirement.required_speedup < 3.5
    assert requirement.achieved_latency_ns == pytest.approx(
        requirement.reference_latency_ns, rel=0.05)


def test_already_faster_platform_needs_no_speedup():
    requirement = required_cpu_speedup(BERT_BASE, INTEL_H100, GH200,
                                       batch_size=1, engine_config=FAST)
    assert requirement.required_speedup == 1.0


def test_gpu_bound_gap_cannot_be_closed_by_cpu():
    # At BS=128 the A100's GPU is the gap; no CPU speedup closes it.
    from repro.hardware import AMD_A100
    with pytest.raises(AnalysisError, match="cannot match"):
        required_cpu_speedup(BERT_BASE, AMD_A100, INTEL_H100, batch_size=128,
                             engine_config=FAST)


def test_latency_at_matches_profiler(intel_profiler):
    direct = latency_at(GPT2, INTEL_H100, batch_size=2, seq_len=256,
                        engine_config=FAST)
    profiled = intel_profiler.profile(GPT2, batch_size=2, seq_len=256)
    assert direct == pytest.approx(profiled.metrics.inference_latency_ns,
                                   rel=1e-6)
