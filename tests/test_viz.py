"""Table/series renderers."""

import pytest

from repro.errors import ConfigurationError
from repro.viz import render_series, render_table, sparkline


def test_table_alignment_and_title():
    text = render_table(["name", "value"], [["a", 1.0], ["bb", 22.5]],
                        title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1]
    assert len({len(line) for line in lines[1:]}) <= 2  # header/sep/rows align


def test_table_width_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        render_table(["a", "b"], [["only-one"]])


def test_table_empty_headers_rejected():
    with pytest.raises(ConfigurationError):
        render_table([], [])


def test_series_renders_pairs():
    text = render_series("BS", [1, 2, 4], [0.1, 0.2, 0.4])
    assert "BS" in text and "value" in text
    assert "0.400" in text


def test_series_length_mismatch():
    with pytest.raises(ConfigurationError):
        render_series("x", [1, 2], [1.0])


def test_sparkline_shape():
    line = sparkline([1.0, 2.0, 3.0, 2.0, 1.0])
    assert len(line) == 5
    assert line[2] == "█"
    assert line[0] == "▁"


def test_sparkline_constant_series():
    assert sparkline([5.0, 5.0]) == "▁▁"


def test_sparkline_empty_rejected():
    with pytest.raises(ConfigurationError):
        sparkline([])
