"""Operator graph: the eager-mode program a model executes.

Eager PyTorch executes operators strictly in program order on one CPU thread,
so the "graph" the engine consumes is an ordered operator stream. The class
still carries enough structure (per-op labels, block boundaries) for SKIP
reports to attribute costs to modules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.workloads.ops import Op


class Phase(enum.Enum):
    """Inference phase (Section II-A)."""

    PREFILL = "prefill"
    DECODE = "decode"


@dataclass
class OperatorGraph:
    """An ordered operator stream plus provenance metadata.

    Attributes:
        model_name: Model that produced the stream.
        phase: Prefill or decode.
        batch_size: Batch size the shapes were built for.
        seq_len: Input sequence length (prefill) or context length (decode).
        ops: Operators in program order.
    """

    model_name: str
    phase: Phase
    batch_size: int
    seq_len: int
    ops: list[Op] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.seq_len <= 0:
            raise ConfigurationError("batch_size and seq_len must be positive")

    def append(self, op: Op) -> None:
        self.ops.append(op)

    def extend(self, ops: Sequence[Op]) -> None:
        self.ops.extend(ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def kernel_launching_ops(self) -> list[Op]:
        """Operators that launch at least one kernel."""
        return [op for op in self.ops if op.launches_kernel]

    @property
    def total_flops(self) -> float:
        """Total modeled FLOPs for one execution of the stream."""
        return sum(op.flops for op in self.ops)

    @property
    def total_bytes(self) -> float:
        """Total modeled DRAM traffic for one execution of the stream."""
        return sum(op.bytes_moved for op in self.ops)

    def count_by_kind(self) -> dict[str, int]:
        """Operator count per kind value, for reports and tests."""
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.kind.value] = counts.get(op.kind.value, 0) + 1
        return counts

    def labels_matching(self, prefix: str) -> list[Op]:
        """Operators whose label starts with ``prefix`` (module filtering)."""
        return [op for op in self.ops if op.label.startswith(prefix)]
