"""Batching policies and the serving-loop simulation.

Section II-A of the paper frames the central serving trade-off: large batches
maximize throughput but inflate per-user latency (TTFT); BS=1 minimizes
latency but wastes hardware. This module simulates a single-replica serving
loop under a static batching policy so the examples and ablation benches can
quantify that trade-off on each platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.latency import LatencyModel
from repro.serving.requests import Request, RequestOutcome
from repro.workloads.config import ModelConfig


@dataclass(frozen=True)
class StaticBatchPolicy:
    """Collect up to ``max_batch_size`` requests or wait at most ``max_wait_ns``.

    ``max_batch_size=1`` degenerates to latency-critical single-stream
    serving (MLPerf SingleStream, per Section IV-B).
    """

    max_batch_size: int = 8
    max_wait_ns: float = 50e6  # 50 ms

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if self.max_wait_ns < 0:
            raise ConfigurationError("max_wait_ns must be non-negative")


@dataclass
class ServingReport:
    """Aggregate statistics for one simulated serving run."""

    outcomes: list[RequestOutcome]

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ConfigurationError("no outcomes to report")

    def _values(self, attr: str) -> list[float]:
        return sorted(getattr(o, attr) for o in self.outcomes)

    def mean_ttft_ns(self) -> float:
        values = self._values("ttft_ns")
        return sum(values) / len(values)

    def p99_ttft_ns(self) -> float:
        values = self._values("ttft_ns")
        return values[min(len(values) - 1, int(0.99 * len(values)))]

    def mean_completion_ns(self) -> float:
        values = self._values("completion_ns")
        return sum(values) / len(values)

    def throughput_tokens_per_s(self) -> float:
        total_tokens = sum(o.request.output_tokens for o in self.outcomes)
        makespan_ns = max(o.request.arrival_ns + o.completion_ns
                          for o in self.outcomes)
        return total_tokens / (makespan_ns / 1e9)

    def mean_batch_size(self) -> float:
        return sum(o.batch_size for o in self.outcomes) / len(self.outcomes)


def simulate_static_batching(
    requests: Sequence[Request],
    model: ModelConfig,
    latency: LatencyModel,
    policy: StaticBatchPolicy = StaticBatchPolicy(),
    recorder: RunRecorder | None = None,
) -> ServingReport:
    """Run a static-batching serving loop over an arrival stream.

    The server collects requests until the batch is full or the oldest
    request has waited ``max_wait_ns``, then runs prefill + decode for the
    whole batch (padded to the longest prompt/output in the batch — the
    classic static-batching inefficiency).

    A recorder, when given, sees each batch as one engine-shaped prefill step
    plus a closed-form generation step (decode here is priced by a trapezoid
    integral, not per-step engine runs).
    """
    if not requests:
        raise ConfigurationError("no requests to serve")
    pending = sorted(requests, key=lambda r: r.arrival_ns)
    outcomes: list[RequestOutcome] = []
    server_free_ns = 0.0
    i = 0
    while i < len(pending):
        first = pending[i]
        batch_start = max(first.arrival_ns, server_free_ns)
        batch = [first]
        j = i + 1
        deadline = first.arrival_ns + policy.max_wait_ns
        while (j < len(pending) and len(batch) < policy.max_batch_size
               and pending[j].arrival_ns <= max(deadline, batch_start)):
            batch.append(pending[j])
            j += 1
        launch_ns = max(batch_start, batch[-1].arrival_ns)

        batch_size = len(batch)
        prompt_len = max(r.prompt_len for r in batch)
        output_tokens = max(r.output_tokens for r in batch)
        ttft = latency.ttft_ns(model, batch_size, prompt_len)
        total = latency.generation_ns(model, batch_size, prompt_len,
                                      output_tokens)
        if recorder is not None:
            waiting = sum(1 for r in pending[j:] if r.arrival_ns <= launch_ns)
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     launch_ns)
            recorder.record_step(
                StepKind.PREFILL, launch_ns, ttft, batch_size,
                queue_depth=waiting,
                shape=EngineShape(model.name, batch_size, prompt_len))
            if total > ttft:
                recorder.record_step(StepKind.GENERATION, launch_ns + ttft,
                                     total - ttft, batch_size,
                                     queue_depth=waiting)
            for request in batch:
                recorder.on_first_token(request.request_id, launch_ns + ttft)
                recorder.on_completed(request.request_id, launch_ns + total)
        for request in batch:
            queued = launch_ns - request.arrival_ns
            outcomes.append(RequestOutcome(
                request=request,
                ttft_ns=queued + ttft,
                completion_ns=queued + total,
                batch_size=batch_size,
                queue_ns=queued,
            ))
        server_free_ns = launch_ns + total
        i = j
    return ServingReport(outcomes=outcomes)
