"""Counters and weighted histograms."""

import pytest

from repro.errors import AnalysisError
from repro.obs import CounterSet, Histogram


def test_histogram_basic_summary():
    h = Histogram("lat")
    for value in (1.0, 2.0, 3.0, 4.0):
        h.observe(value)
    summary = h.summary()
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
    assert summary.p50 == 2.0


def test_histogram_weights_shift_percentiles():
    h = Histogram("w")
    h.observe(1.0, count=1.0)
    h.observe(10.0, count=99.0)
    assert h.percentile(50) == 10.0
    assert h.percentile(1) == 1.0
    assert h.mean() == pytest.approx((1.0 + 10.0 * 99.0) / 100.0)


def test_histogram_empty_rejected():
    h = Histogram("empty")
    assert h.empty
    with pytest.raises(AnalysisError):
        h.mean()
    with pytest.raises(AnalysisError):
        h.percentile(50)


def test_histogram_invalid_inputs_rejected():
    h = Histogram("bad")
    with pytest.raises(AnalysisError):
        h.observe(1.0, count=0.0)
    h.observe(1.0)
    with pytest.raises(AnalysisError):
        h.percentile(101)


def test_counter_set_accumulates():
    counters = CounterSet()
    counters.add("steps")
    counters.add("steps", 2.0)
    assert counters.get("steps") == 3.0
    assert counters.get("missing") == 0.0
    assert counters.as_dict() == {"steps": 3.0}
    with pytest.raises(AnalysisError):
        counters.add("steps", -1.0)
