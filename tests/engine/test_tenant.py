"""Tenant-namespaced rendezvous: two engine process groups on one core.

The serving runtime schedules many engine sessions on a shared
:class:`~repro.sim.core.SimCore`; the ``tenant`` parameter on
:func:`~repro.engine.processes.per_device_launch_processes` exists so two
independent dispatch groups (two models, two replicas) can meet at their
*own* collectives instead of colliding on program-position keys.
"""

from repro.engine import DispatchMode, EngineConfig, ExecutionMode, TPConfig
from repro.engine.executor import build_core
from repro.engine.lowering import lower_graph
from repro.engine.processes import per_device_launch_processes
from repro.engine.tp import shard_lowered
from repro.hardware import INTEL_H100
from repro.trace.builder import TraceBuilder
from repro.workloads import GPT2
from repro.workloads.builder import build_graph

_TP = TPConfig(degree=2, dispatch=DispatchMode.THREAD_PER_DEVICE)
_CONFIG = EngineConfig(iterations=1, warmup_iterations=0)


def _sharded_lowering():
    return shard_lowered(lower_graph(build_graph(GPT2, 1, 32)), _TP)


def test_two_tenant_groups_share_one_core():
    """Both tenants run to completion and issue identical kernel streams."""
    lowered = _sharded_lowering()
    core = build_core(_TP)
    builder_a, builder_b = TraceBuilder(), TraceBuilder()
    core.spawn_all(per_device_launch_processes(
        core, builder_a, lowered, INTEL_H100, ExecutionMode.EAGER, _CONFIG,
        tenant="model-a"))
    core.spawn_all(per_device_launch_processes(
        core, builder_b, lowered, INTEL_H100, ExecutionMode.EAGER, _CONFIG,
        tenant="model-b"))
    core.run()

    trace_a, trace_b = builder_a.finish(), builder_b.finish()
    assert len(trace_a.kernels) == len(trace_b.kernels) > 0

    keys = list(core._rendezvous)
    by_tenant = {tenant: [k for k in keys if k[0] == tenant]
                 for tenant in ("model-a", "model-b")}
    assert len(by_tenant["model-a"]) == len(by_tenant["model-b"]) > 0
    assert len(by_tenant["model-a"]) + len(by_tenant["model-b"]) == len(keys)


def test_default_tenant_keeps_historical_keys():
    """``tenant=None`` (the default) must not change rendezvous keys, so
    existing single-tenant runs stay bit-identical."""
    lowered = _sharded_lowering()
    core = build_core(_TP)
    builder = TraceBuilder()
    core.spawn_all(per_device_launch_processes(
        core, builder, lowered, INTEL_H100, ExecutionMode.EAGER, _CONFIG))
    core.run()
    assert all(key[0] in ("allreduce", "iteration-end")
               for key in core._rendezvous)
