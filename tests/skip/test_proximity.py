"""Chain mining and proximity scores (Eq. 6)."""

import pytest

from repro.errors import AnalysisError
from repro.skip import kernel_segments, mine_chains, select_nonoverlapping
from repro.skip.proximity import ChainStats


def test_simple_deterministic_pair():
    segments = [["a", "b", "c", "a", "b", "c"]]
    result = mine_chains(segments, 2)
    by_chain = {c.chain: c for c in result.chains}
    assert by_chain[("a", "b")].proximity_score == 1.0
    assert by_chain[("b", "c")].proximity_score == 1.0


def test_nondeterministic_anchor_scores_fractionally():
    # 'a' followed by 'b' twice and by 'c' once => PS(a,b) = 2/3.
    segments = [["a", "b", "a", "b", "a", "c"]]
    result = mine_chains(segments, 2)
    by_chain = {c.chain: c for c in result.chains}
    assert by_chain[("a", "b")].proximity_score == pytest.approx(2 / 3)
    assert by_chain[("a", "c")].proximity_score == pytest.approx(1 / 3)


def test_anchor_without_full_window_breaks_determinism():
    # Final 'a' has no following kernel, so PS(a,b) = 1/2, not 1.
    segments = [["a", "b", "a"]]
    result = mine_chains(segments, 2)
    by_chain = {c.chain: c for c in result.chains}
    assert by_chain[("a", "b")].proximity_score == pytest.approx(0.5)


def test_counts_aggregate_across_segments():
    segments = [["a", "b"], ["a", "b"], ["a", "b"]]
    result = mine_chains(segments, 2)
    assert result.total_instances == 3
    assert result.unique_candidates == 1
    assert result.chains[0].frequency == 3
    assert result.chains[0].anchor_frequency == 3


def test_longer_chains_have_fewer_instances():
    segment = list("abcdefgh") * 4
    short = mine_chains([segment], 2)
    long = mine_chains([segment], 8)
    assert short.total_instances > long.total_instances


def test_deterministic_filter_threshold():
    segments = [["a", "b", "a", "b", "a", "c"]]
    result = mine_chains(segments, 2)
    assert len(result.deterministic(1.0)) == 1  # only (b, a)
    assert len(result.deterministic(0.5)) >= 2


def test_deterministic_threshold_validation():
    result = mine_chains([["a", "b"]], 2)
    with pytest.raises(AnalysisError):
        result.deterministic(0.0)
    with pytest.raises(AnalysisError):
        result.deterministic(1.5)


def test_chain_length_validation():
    with pytest.raises(AnalysisError):
        mine_chains([["a", "b"]], 1)
    with pytest.raises(AnalysisError):
        mine_chains([], 2)


def test_select_nonoverlapping_greedy():
    segment = ["a", "b", "a", "b", "a", "b"]
    chains = [ChainStats(("a", "b"), 3, 3)]
    selected = select_nonoverlapping(segment, chains)
    assert [start for start, _ in selected] == [0, 2, 4]


def test_select_prefers_longer_chain():
    segment = ["a", "b", "c", "d"]
    selected = select_nonoverlapping(segment, [("a", "b"), ("a", "b", "c")])
    assert selected[0][1] == ("a", "b", "c")


def test_select_with_no_chains():
    assert select_nonoverlapping(["a", "b"], []) == []


def test_kernel_segments_from_engine_trace(gpt2_profile):
    segments = kernel_segments(gpt2_profile.trace)
    assert len(segments) == 3  # default engine iterations
    assert all(len(s) == 413 for s in segments)
    assert segments[0] == segments[1] == segments[2]


def test_kernel_segments_require_iterations():
    from repro.trace import Trace
    with pytest.raises(AnalysisError):
        kernel_segments(Trace())


def test_engine_trace_long_chain_anchored_at_unique_kernel(gpt2_profile):
    """A 256-chain anchored at the once-per-iteration wte embedding kernel
    must be deterministic — the mechanism behind the paper's few long
    fusable chains."""
    segments = kernel_segments(gpt2_profile.trace)
    result = mine_chains(segments, 256)
    deterministic = result.deterministic(1.0)
    assert deterministic
    anchors = {c.chain[0] for c in deterministic}
    assert any("indexSelectLargeIndex" in anchor for anchor in anchors)
