"""repro — SKIP profiler and CPU-GPU coupled-architecture characterization.

Reproduction of "Characterizing and Optimizing LLM Inference Workloads on
CPU-GPU Coupled Architectures" (ISPASS 2025). Physical testbeds are replaced
by a calibrated discrete-event simulator (see DESIGN.md); everything above
the trace layer — SKIP's dependency graphs, TKLQT/AKD metrics, boundedness
classification, and proximity-score fusion recommendation — is implemented
as described in the paper and also runs on imported PyTorch Profiler Chrome
traces.

Quickstart:
    >>> from repro import SkipProfiler, GH200, LLAMA_3_2_1B
    >>> profiler = SkipProfiler(GH200)
    >>> result = profiler.profile(LLAMA_3_2_1B, batch_size=8, seq_len=512)
    >>> result.boundedness.value
    'cpu-bound'
"""

from repro.analysis import (
    find_balanced_region,
    find_crossover,
    run_batch_sweep,
)
from repro.engine import EngineConfig, ExecutionMode, FusionPlan, RunResult, run
from repro.hardware import (
    ALL_PLATFORMS,
    AMD_A100,
    Coupling,
    CpuSpec,
    GH200,
    GpuSpec,
    INTEL_H100,
    InterconnectSpec,
    MI300A,
    PAPER_PLATFORMS,
    Platform,
    get_platform,
)
from repro.skip import (
    Boundedness,
    ProfileResult,
    SkipMetrics,
    SkipProfiler,
    find_transition,
)
from repro.workloads import (
    ALL_MODELS,
    BERT_BASE,
    GEMMA_2B,
    GPT2,
    LLAMA_3_2_1B,
    ModelConfig,
    PAPER_MODELS,
    Phase,
    XLM_ROBERTA_BASE,
    build_graph,
    get_model,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_MODELS",
    "ALL_PLATFORMS",
    "AMD_A100",
    "BERT_BASE",
    "Boundedness",
    "Coupling",
    "CpuSpec",
    "EngineConfig",
    "ExecutionMode",
    "FusionPlan",
    "GEMMA_2B",
    "GH200",
    "GPT2",
    "GpuSpec",
    "INTEL_H100",
    "InterconnectSpec",
    "LLAMA_3_2_1B",
    "MI300A",
    "ModelConfig",
    "PAPER_MODELS",
    "PAPER_PLATFORMS",
    "Phase",
    "Platform",
    "ProfileResult",
    "RunResult",
    "SkipMetrics",
    "SkipProfiler",
    "XLM_ROBERTA_BASE",
    "build_graph",
    "find_balanced_region",
    "find_crossover",
    "find_transition",
    "get_model",
    "get_platform",
    "run",
    "run_batch_sweep",
    "__version__",
]
