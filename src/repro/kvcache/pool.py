"""Paged KV-cache block pool: fixed-size blocks carved out of HBM.

vLLM-style paged attention allocates the KV cache in fixed-size blocks of
``block_tokens`` tokens each, so fragmentation is bounded and a sequence's
cache can grow one block at a time. This module owns the integer arithmetic:
block sizes derive from the model's KV geometry (``2 * layers * kv_dim``
bytes-per-token at FP16), and per-replica pool capacities derive from
:attr:`GpuSpec.memory_gib` minus the FP16 weights and the runtime reserve —
the same terms :func:`repro.workloads.memory.memory_report` charges
statically.

Everything here is an ``int``: byte counts are floored to whole bytes and
capacities to whole blocks, so pool accounting never compares floats for
equality (check-code rule C002 stays honest by construction).
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ConfigurationError, SimulationError
from repro.hardware.gpu import GpuSpec
from repro.units import gib_to_bytes
from repro.workloads.config import Arch, ModelConfig
from repro.workloads.memory import RUNTIME_RESERVE_BYTES, weights_bytes
from repro.workloads.ops import FP16_BYTES

#: Default tokens per KV block (vLLM's default page size).
KV_BLOCK_TOKENS = 16


def block_bytes(config: ModelConfig,
                block_tokens: int = KV_BLOCK_TOKENS) -> int:
    """HBM bytes one KV block occupies (K and V, all layers, FP16)."""
    if block_tokens <= 0:
        raise ConfigurationError("block_tokens must be positive")
    if config.arch is Arch.ENCODER_ONLY:
        raise ConfigurationError(
            f"{config.name} is encoder-only: it keeps no KV cache, so a "
            f"paged KV pool is meaningless for it")
    return 2 * config.layers * config.kv_dim * FP16_BYTES * block_tokens


def blocks_for_tokens(tokens: int,
                      block_tokens: int = KV_BLOCK_TOKENS) -> int:
    """Blocks needed to hold ``tokens`` cache entries (ceiling division)."""
    if tokens < 0:
        raise ConfigurationError(f"tokens must be non-negative, got {tokens}")
    if block_tokens <= 0:
        raise ConfigurationError("block_tokens must be positive")
    return -(-tokens // block_tokens)


def pool_bytes(config: ModelConfig, gpu: GpuSpec,
               pool_gib: float | None = None) -> int:
    """Whole bytes available to the KV pool on one replica's GPU.

    With ``pool_gib`` set the pool is exactly that size (the knob the
    pressure sweeps turn); otherwise it is everything HBM has left after
    the FP16 weights and :data:`RUNTIME_RESERVE_BYTES`.
    """
    if pool_gib is not None:
        if pool_gib <= 0:
            raise ConfigurationError("pool_gib must be positive")
        return gib_to_bytes(pool_gib)
    free = (gib_to_bytes(gpu.memory_gib) - int(weights_bytes(config))
            - RUNTIME_RESERVE_BYTES)
    if free <= 0:
        raise ConfigurationError(
            f"{config.name} weights plus runtime reserve exceed "
            f"{gpu.name}'s {gpu.memory_gib} GiB; no room for a KV pool")
    return free


def pool_capacity_blocks(config: ModelConfig, gpu: GpuSpec,
                         pool_gib: float | None = None,
                         block_tokens: int = KV_BLOCK_TOKENS) -> int:
    """Whole KV blocks the pool holds (floor of bytes / block size)."""
    per_block = block_bytes(config, block_tokens)
    capacity = pool_bytes(config, gpu, pool_gib) // per_block
    if capacity <= 0:
        raise ConfigurationError(
            f"KV pool of {pool_bytes(config, gpu, pool_gib)} bytes is "
            f"smaller than one {per_block}-byte block of {config.name}")
    return capacity


class BlockPool:
    """Counting allocator over a fixed number of KV blocks.

    Owners are opaque hashables (serving uses request ids). The pool tracks
    how many blocks each owner holds plus a running total, and refuses
    over-commit — the sim-level invariant rule K002 re-verifies from the
    event log.

    Besides per-owner private blocks, the pool keeps **refcounted shared
    groups** keyed by an opaque prefix key: requests tagged with the same
    prefix hash reference one group of blocks instead of allocating their
    own copy (copy-on-write — the divergent suffix stays private). A group
    with refcount 0 is *idle*: its blocks stay warm in the pool until
    evicted under pressure. Misuse — dereferencing past zero, or evicting
    a group somebody still references — raises, and rule R003 re-verifies
    the same discipline from the event log.
    """

    def __init__(self, capacity_blocks: int, name: str = "kv") -> None:
        if capacity_blocks <= 0:
            raise ConfigurationError("pool capacity must be positive")
        self.capacity_blocks = capacity_blocks
        self.name = name
        self.allocated = 0
        self._held: dict[Hashable, int] = {}
        # key -> [blocks, refcount]; insertion order doubles as eviction
        # age (oldest idle group evicted first).
        self._shared: dict[Hashable, list[int]] = {}

    @property
    def free_blocks(self) -> int:
        return self.capacity_blocks - self.allocated

    def held(self, owner: Hashable) -> int:
        """Blocks ``owner`` currently holds (0 if none)."""
        return self._held.get(owner, 0)

    def owners(self) -> list[Hashable]:
        """Owners currently holding blocks, in insertion order."""
        return list(self._held)

    def can_allocate(self, blocks: int) -> bool:
        return blocks <= self.free_blocks

    def allocate(self, owner: Hashable, blocks: int) -> None:
        """Give ``owner`` ``blocks`` more blocks; raises on over-commit."""
        if blocks <= 0:
            raise SimulationError(
                f"pool {self.name}: allocation must be positive, "
                f"got {blocks}")
        if not self.can_allocate(blocks):
            raise SimulationError(
                f"pool {self.name}: over-commit — {blocks} blocks requested "
                f"with {self.free_blocks}/{self.capacity_blocks} free")
        self._held[owner] = self.held(owner) + blocks
        self.allocated += blocks

    def release(self, owner: Hashable) -> int:
        """Free every block ``owner`` holds; returns how many were freed."""
        freed = self._held.pop(owner, 0)
        self.allocated -= freed
        return freed

    # ------------------------------------------------------------------
    # Refcounted shared groups (copy-on-write prefix caching)
    # ------------------------------------------------------------------
    def has_shared(self, key: Hashable) -> bool:
        """True if a shared group for ``key`` is resident (any refcount)."""
        return key in self._shared

    def shared_blocks(self, key: Hashable) -> int:
        """Blocks the shared group ``key`` occupies (0 if absent)."""
        entry = self._shared.get(key)
        return entry[0] if entry else 0

    def shared_refs(self, key: Hashable) -> int:
        """Current refcount of shared group ``key`` (0 if absent or idle)."""
        entry = self._shared.get(key)
        return entry[1] if entry else 0

    @property
    def shared_allocated(self) -> int:
        """Total blocks held by shared groups (resident, any refcount)."""
        return sum(entry[0] for entry in self._shared.values())

    def add_shared(self, key: Hashable, blocks: int) -> None:
        """Insert shared group ``key`` with refcount 1; raises on misuse."""
        if blocks <= 0:
            raise SimulationError(
                f"pool {self.name}: shared group must be positive, "
                f"got {blocks}")
        if key in self._shared:
            raise SimulationError(
                f"pool {self.name}: shared group {key!r} already resident")
        if not self.can_allocate(blocks):
            raise SimulationError(
                f"pool {self.name}: over-commit — shared group of {blocks} "
                f"blocks with {self.free_blocks}/{self.capacity_blocks} free")
        self._shared[key] = [blocks, 1]
        self.allocated += blocks

    def ref_shared(self, key: Hashable) -> int:
        """Add one reference to group ``key``; returns the new refcount."""
        entry = self._shared.get(key)
        if entry is None:
            raise SimulationError(
                f"pool {self.name}: ref of unknown shared group {key!r}")
        entry[1] += 1
        return entry[1]

    def deref_shared(self, key: Hashable) -> int:
        """Drop one reference to group ``key``; returns the new refcount.

        The group's blocks stay resident at refcount 0 (a warm cache
        entry); dropping below zero is a double-free and raises.
        """
        entry = self._shared.get(key)
        if entry is None:
            raise SimulationError(
                f"pool {self.name}: deref of unknown shared group {key!r}")
        if entry[1] <= 0:
            raise SimulationError(
                f"pool {self.name}: double-free — shared group {key!r} "
                f"dereferenced at refcount 0")
        entry[1] -= 1
        return entry[1]

    def evict_shared(self, key: Hashable) -> int:
        """Drop idle group ``key`` from the pool; returns blocks freed.

        Evicting a group somebody still references would invalidate live
        sequences' caches, so a positive refcount raises.
        """
        entry = self._shared.get(key)
        if entry is None:
            raise SimulationError(
                f"pool {self.name}: evict of unknown shared group {key!r}")
        if entry[1] > 0:
            raise SimulationError(
                f"pool {self.name}: shared group {key!r} evicted while "
                f"refcount is {entry[1]}")
        del self._shared[key]
        self.allocated -= entry[0]
        return entry[0]

    def idle_shared_keys(self) -> list[Hashable]:
        """Keys of refcount-0 groups, oldest (first-inserted) first."""
        return [key for key, entry in self._shared.items() if entry[1] == 0]
