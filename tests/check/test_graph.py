"""Graph verifier: clean on real lowerings, loud on mutated ones.

Every known-bad fixture is a minimal mutation of the real GPT-2 TP=2
sharding, so a rule that stops firing here means the verifier regressed,
not that the engine changed shape.
"""

from dataclasses import replace

import pytest

from repro.check import check_lowering, check_sharding
from repro.engine import TPConfig, shard_lowered
from repro.engine.lowering import KernelTask, LoweredOp
from repro.workloads.ops import OpKind


def _rule_ids(findings):
    return {f.rule_id for f in findings}


def _first_index(lowered, predicate):
    for index, lowered_op in enumerate(lowered):
        if predicate(lowered_op):
            return index
    raise AssertionError("no op matched the predicate")


def _sharded_compute_index(sharded):
    return _first_index(
        sharded,
        lambda lo: ".attn." in lo.op.label
        and lo.op.kind is not OpKind.ALL_REDUCE
        and any(k.flops > 0 for k in lo.kernels))


def _allreduce_index(sharded):
    return _first_index(sharded,
                        lambda lo: lo.op.kind is OpKind.ALL_REDUCE)


# ----------------------------------------------------------------------
# Clean artifacts pass clean
# ----------------------------------------------------------------------
def test_real_lowering_is_clean(gpt2_lowered):
    assert check_lowering(gpt2_lowered) == []


def test_real_sharding_is_clean(gpt2_lowered, gpt2_sharded, gpt2_tp2):
    assert check_sharding(gpt2_lowered, gpt2_sharded, gpt2_tp2) == []


def test_degree_one_identity_is_clean(gpt2_lowered):
    tp1 = TPConfig(degree=1)
    sharded = shard_lowered(gpt2_lowered, tp1)
    assert check_sharding(gpt2_lowered, sharded, tp1) == []


@pytest.mark.parametrize("degree", [2, 3, 4, 6])
def test_all_dividing_degrees_are_clean(gpt2_lowered, degree):
    tp = TPConfig(degree=degree)
    sharded = shard_lowered(gpt2_lowered, tp)
    assert check_sharding(gpt2_lowered, sharded, tp) == []


# ----------------------------------------------------------------------
# Conservation violations (G001 / G002)
# ----------------------------------------------------------------------
def test_scaled_flops_flagged_g001(gpt2_lowered, gpt2_sharded, gpt2_tp2):
    index = _sharded_compute_index(gpt2_sharded)
    victim = gpt2_sharded[index]
    kernels = tuple(replace(k, flops=k.flops * 1.5) for k in victim.kernels)
    mutated = list(gpt2_sharded)
    mutated[index] = replace(victim, kernels=kernels)
    findings = check_sharding(gpt2_lowered, mutated, gpt2_tp2)
    assert "G001" in _rule_ids(findings)
    assert any(victim.op.label in f.location for f in findings)


def test_scaled_bytes_flagged_g002(gpt2_lowered, gpt2_sharded, gpt2_tp2):
    index = _sharded_compute_index(gpt2_sharded)
    victim = gpt2_sharded[index]
    kernels = tuple(replace(k, bytes_read=k.bytes_read * 2 + 64)
                    for k in victim.kernels)
    mutated = list(gpt2_sharded)
    mutated[index] = replace(victim, kernels=kernels)
    assert "G002" in _rule_ids(
        check_sharding(gpt2_lowered, mutated, gpt2_tp2))


def test_mutated_replicated_op_also_flagged(gpt2_lowered, gpt2_sharded,
                                            gpt2_tp2):
    index = _first_index(
        gpt2_sharded,
        lambda lo: lo.kernels and "norm" in lo.op.label)
    victim = gpt2_sharded[index]
    kernels = tuple(replace(k, flops=k.flops + 1e6) for k in victim.kernels)
    mutated = list(gpt2_sharded)
    mutated[index] = replace(victim, kernels=kernels)
    assert "G001" in _rule_ids(
        check_sharding(gpt2_lowered, mutated, gpt2_tp2))


# ----------------------------------------------------------------------
# All-reduce placement (G003 / G004)
# ----------------------------------------------------------------------
def test_dropped_allreduce_flagged_g003(gpt2_lowered, gpt2_sharded, gpt2_tp2):
    index = _allreduce_index(gpt2_sharded)
    mutated = gpt2_sharded[:index] + gpt2_sharded[index + 1:]
    findings = check_sharding(gpt2_lowered, mutated, gpt2_tp2)
    assert "G003" in _rule_ids(findings)


def test_duplicated_allreduce_flagged(gpt2_lowered, gpt2_sharded, gpt2_tp2):
    index = _allreduce_index(gpt2_sharded)
    mutated = (gpt2_sharded[:index + 1] + [gpt2_sharded[index]]
               + gpt2_sharded[index + 1:])
    rule_ids = _rule_ids(check_sharding(gpt2_lowered, mutated, gpt2_tp2))
    # The first boundary now has two all-reduces and the second all-reduce
    # follows another all-reduce, not a boundary.
    assert {"G003", "G004"} & rule_ids


def test_misplaced_allreduce_flagged_g004(gpt2_lowered, gpt2_sharded,
                                          gpt2_tp2):
    index = _allreduce_index(gpt2_sharded)
    allreduce = gpt2_sharded[index]
    without = gpt2_sharded[:index] + gpt2_sharded[index + 1:]
    mutated = [without[0], allreduce] + without[1:]
    rule_ids = _rule_ids(check_sharding(gpt2_lowered, mutated, gpt2_tp2))
    assert "G004" in rule_ids
    assert "G003" in rule_ids  # its boundary lost its all-reduce


# ----------------------------------------------------------------------
# Op-stream mutations (G005)
# ----------------------------------------------------------------------
def test_dropped_compute_op_flagged_g005(gpt2_lowered, gpt2_sharded,
                                         gpt2_tp2):
    index = _sharded_compute_index(gpt2_sharded)
    mutated = gpt2_sharded[:index] + gpt2_sharded[index + 1:]
    findings = check_sharding(gpt2_lowered, mutated, gpt2_tp2)
    assert _rule_ids(findings) == {"G005"}


def test_duplicated_kernel_flagged_g005(gpt2_lowered, gpt2_sharded, gpt2_tp2):
    index = _sharded_compute_index(gpt2_sharded)
    victim = gpt2_sharded[index]
    mutated = list(gpt2_sharded)
    mutated[index] = replace(victim,
                             kernels=victim.kernels + (victim.kernels[0],))
    assert "G005" in _rule_ids(
        check_sharding(gpt2_lowered, mutated, gpt2_tp2))


# ----------------------------------------------------------------------
# Structural kernel checks (G006 / G007 / G008 / G009)
# ----------------------------------------------------------------------
def test_negative_work_flagged_g006(gpt2_lowered):
    index = _first_index(gpt2_lowered, lambda lo: bool(lo.kernels))
    victim = gpt2_lowered[index]
    mutated = list(gpt2_lowered)
    kernels = (object.__new__(KernelTask),)
    # Op.__post_init__ rejects negative work, so corrupt the kernel without
    # running validation — exactly the artifact a buggy pass could emit.
    object.__setattr__(kernels[0], "__dict__",
                       {**vars(victim.kernels[0]), "flops": -1.0})
    mutated[index] = replace(victim, kernels=kernels + victim.kernels[1:])
    assert "G006" in _rule_ids(check_lowering(mutated))


def test_fused_member_mismatch_flagged_g007(gpt2_lowered):
    member = KernelTask("m", flops=10.0, bytes_read=4.0, bytes_written=4.0)
    fused = KernelTask("fused", flops=999.0, bytes_read=8.0,
                       bytes_written=8.0, members=(member, member))
    index = _first_index(gpt2_lowered, lambda lo: bool(lo.kernels))
    mutated = list(gpt2_lowered)
    mutated[index] = replace(gpt2_lowered[index], kernels=(fused,))
    assert "G007" in _rule_ids(check_lowering(mutated))


def test_wrong_collective_world_flagged_g008(gpt2_sharded, gpt2_tp2):
    index = _allreduce_index(gpt2_sharded)
    victim = gpt2_sharded[index]
    mutated = list(gpt2_sharded)
    mutated[index] = LoweredOp(op=replace(victim.op, dims=(4,)),
                               kernels=victim.kernels)
    assert "G008" in _rule_ids(check_lowering(mutated, gpt2_tp2))


def test_zero_work_kernel_warns_g009(gpt2_lowered):
    ghost = KernelTask("ghost", flops=0.0, bytes_read=0.0, bytes_written=0.0)
    index = _first_index(gpt2_lowered, lambda lo: bool(lo.kernels))
    mutated = list(gpt2_lowered)
    mutated[index] = replace(gpt2_lowered[index],
                             kernels=gpt2_lowered[index].kernels + (ghost,))
    findings = check_lowering(mutated)
    assert _rule_ids(findings) == {"G009"}
    assert all(f.severity.value == "warning" for f in findings)
