"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A model, platform, or engine configuration is invalid."""


class TraceError(ReproError):
    """A trace is malformed or cannot be parsed."""


class AnalysisError(ReproError):
    """An analysis (metrics, classification, mining) received invalid input."""


class SimulationError(ReproError):
    """The discrete-event engine entered an inconsistent state."""
