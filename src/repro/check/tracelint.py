"""Trace linter: static verification of Chrome traces + exact-ns sidecars.

Checks the artifacts the exporters emit (:mod:`repro.trace.chrome`,
``repro serve --emit-trace``) before any analysis consumes them:

* raw-file checks on the JSON event list — canonical (timestamp,
  correlation) ordering, parseability, and agreement between the
  microsecond fields and the exact-nanosecond sidecar;
* structural checks on the parsed trace — 1:1 launch↔kernel correlation
  ids, kernels that never start before their launch call, non-overlapping
  kernels per (device, stream), well-ordered iteration marks;
* metric identities — TKLQT, AKD, inference latency, and GPU idle time
  recomputed from the raw events with an independent sweep and compared
  against :func:`repro.skip.metrics.compute_metrics` within tolerance.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.check.findings import Finding, Severity, register_rule
from repro.errors import ReproError
from repro.trace import chrome
from repro.trace.events import LAUNCH_KERNEL
from repro.trace.trace import Trace

T001 = register_rule(
    "T001", "trace", "events not in canonical (timestamp, correlation) order")
T002 = register_rule("T002", "trace", "trace or event is malformed")
T003 = register_rule("T003", "trace", "duplicate kernel correlation id")
T004 = register_rule("T004", "trace", "kernel has no matching launch call")
T005 = register_rule("T005", "trace", "launch call has no matching kernel")
T006 = register_rule("T006", "trace", "kernel begins before its launch call")
T007 = register_rule("T007", "trace", "kernels overlap on one (device, stream)")
T008 = register_rule(
    "T008", "trace", "iteration marks overlap or are out of order")
T009 = register_rule(
    "T009", "trace", "exact-ns sidecar disagrees with microsecond fields")
T010 = register_rule(
    "T010", "trace", "recomputed SKIP metric identities diverge")

#: Slack for us-vs-ns sidecar agreement: the ns -> us conversion costs at
#: most a float ulp, far below 2 ns for any realistic trace span.
_SIDECAR_TOL_NS = 2.0
#: Relative tolerance for metric-identity comparison.
_METRIC_REL_TOL = 1e-9


def _event_ts_ns(raw: dict[str, Any]) -> float:
    args = raw.get("args") or {}
    if "ts_ns" in args:
        return float(args["ts_ns"])
    return float(raw.get("ts", 0.0)) * 1e3


def lint_chrome_text(text: str) -> tuple[list[Finding], Trace | None]:
    """Lint a Chrome-trace JSON string; returns findings + parsed trace."""
    findings: list[Finding] = []
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return [Finding(T002, Severity.ERROR, "file",
                        f"invalid JSON: {exc}")], None
    raw_events = payload.get("traceEvents", []) if isinstance(payload, dict) \
        else payload
    if not isinstance(raw_events, list):
        return [Finding(T002, Severity.ERROR, "file",
                        "traceEvents is not a list")], None

    previous_key: tuple[float, float] | None = None
    for index, raw in enumerate(raw_events):
        if not isinstance(raw, dict) or raw.get("ph") != "X":
            continue
        where = f"event[{index}] {raw.get('name', '?')!r}"
        args = raw.get("args") or {}
        for us_field, ns_field in (("ts", "ts_ns"), ("dur", "dur_ns")):
            if ns_field in args:
                ns = float(args[ns_field])
                us = float(raw.get(us_field, 0.0))
                if abs(us * 1e3 - ns) > _SIDECAR_TOL_NS:
                    findings.append(Finding(
                        T009, Severity.ERROR, where,
                        f"{us_field}={us}us disagrees with "
                        f"{ns_field}={ns}ns"))
        if float(raw.get("dur", 0.0)) < 0:
            findings.append(Finding(
                T002, Severity.ERROR, where,
                f"negative duration {raw.get('dur')}"))
        correlation = float(args.get("correlation", args.get(
            "Sequence number", -1)))
        key = (_event_ts_ns(raw), correlation)
        if previous_key is not None and key[0] < previous_key[0]:
            findings.append(Finding(
                T001, Severity.ERROR, where,
                f"begins at {key[0]}ns, before the preceding event at "
                f"{previous_key[0]}ns"))
        previous_key = key

    if any(f.rule_id == "T002" for f in findings):
        return findings, None
    try:
        trace = chrome.loads(text)
    except ReproError as exc:
        findings.append(Finding(T002, Severity.ERROR, "file", str(exc)))
        return findings, None
    findings.extend(lint_trace(trace))
    return findings, trace


def lint_chrome_file(path: str | Path) -> tuple[list[Finding], Trace | None]:
    """Lint a Chrome-trace JSON file (raw + structural + identity checks)."""
    from repro.errors import TraceError

    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    return lint_chrome_text(text)


def lint_trace(trace: Trace) -> list[Finding]:
    """Structural and metric-identity checks on a parsed trace."""
    findings: list[Finding] = []

    # --- launch <-> kernel correlation integrity -----------------------
    kernels_by_corr: dict[int, Any] = {}
    for kernel in trace.kernels:
        if kernel.correlation_id < 0:
            continue  # graph-replayed kernels have no individual launch
        if kernel.correlation_id in kernels_by_corr:
            findings.append(Finding(
                T003, Severity.ERROR, f"kernel {kernel.name!r}",
                f"correlation id {kernel.correlation_id} already used by "
                f"{kernels_by_corr[kernel.correlation_id].name!r}"))
            continue
        kernels_by_corr[kernel.correlation_id] = kernel

    launches_by_corr: dict[int, Any] = {}
    for call in trace.runtime_calls:
        if call.name == LAUNCH_KERNEL and call.correlation_id >= 0:
            launches_by_corr[call.correlation_id] = call

    for correlation, kernel in sorted(kernels_by_corr.items()):
        call = launches_by_corr.get(correlation)
        if call is None:
            findings.append(Finding(
                T004, Severity.ERROR, f"kernel {kernel.name!r}",
                f"correlation id {correlation} matches no launch call"))
        elif kernel.ts < call.ts:
            findings.append(Finding(
                T006, Severity.ERROR, f"kernel {kernel.name!r}",
                f"begins at {kernel.ts}ns before its launch call at "
                f"{call.ts}ns"))
    for correlation, call in sorted(launches_by_corr.items()):
        if correlation not in kernels_by_corr:
            findings.append(Finding(
                T005, Severity.ERROR, f"launch at {call.ts}ns",
                f"correlation id {correlation} matches no kernel"))

    # --- in-order streams ----------------------------------------------
    per_stream: dict[tuple[int, int], list] = {}
    for kernel in trace.kernels:
        per_stream.setdefault((kernel.device, kernel.stream), []).append(kernel)
    for (device, stream), stream_kernels in sorted(per_stream.items()):
        stream_kernels.sort(key=lambda k: (k.ts, k.event_id))
        for earlier, later in zip(stream_kernels, stream_kernels[1:]):
            if later.ts < earlier.ts_end - 1e-6:
                findings.append(Finding(
                    T007, Severity.ERROR,
                    f"device {device} stream {stream}",
                    f"kernel {later.name!r} at {later.ts}ns overlaps "
                    f"{earlier.name!r} ending at {earlier.ts_end}ns"))

    # --- iteration marks -----------------------------------------------
    marks = sorted(trace.iterations, key=lambda m: m.ts)
    for earlier, later in zip(marks, marks[1:]):
        if later.ts < earlier.ts_end:
            findings.append(Finding(
                T008, Severity.ERROR, f"iteration {later.index}",
                f"begins at {later.ts}ns inside iteration {earlier.index} "
                f"ending at {earlier.ts_end}ns"))

    if not any(f.severity is Severity.ERROR for f in findings):
        findings.extend(_check_metric_identities(trace))
    return findings


def _independent_iteration_metrics(
        trace: Trace, ts: float, ts_end: float) -> dict[str, float] | None:
    """Eq. 2-5 for one iteration, recomputed with a plain sweep.

    Deliberately shares no code with :mod:`repro.skip.metrics`: launches are
    matched to kernels by correlation id directly, roots are recovered with
    a per-thread interval sweep, and the identities come straight from the
    paper's equations.
    """
    kernels_by_corr = {k.correlation_id: k for k in trace.kernels
                       if k.correlation_id >= 0}
    matched = []
    for call in trace.runtime_calls:
        if (call.name == LAUNCH_KERNEL and call.correlation_id >= 0
                and ts <= call.ts < ts_end):
            kernel = kernels_by_corr.get(call.correlation_id)
            if kernel is not None:
                matched.append((call, kernel))
    kernels = [k for _, k in matched]
    kernels += [k for k in trace.kernels
                if k.correlation_id < 0 and ts <= k.ts < ts_end]
    if not kernels:
        return None

    # Top-level operators: per thread, an operator is a root when it begins
    # at or after the previous root's end (operators nest properly).
    roots = []
    open_end: dict[int, float] = {}
    for op in sorted(trace.operators, key=lambda o: (o.ts, -o.dur, o.seq)):
        if op.ts >= open_end.get(op.tid, -math.inf):
            roots.append(op)
            open_end[op.tid] = op.ts_end
    window_roots = [o for o in roots if ts <= o.ts < ts_end]
    if not window_roots:
        return None

    gpu_busy = sum(k.dur for k in kernels)
    latency = (max(k.ts_end for k in kernels)
               - min(o.ts for o in window_roots))
    return {
        "tklqt_ns": sum(k.ts - call.ts for call, k in matched),
        "akd_ns": gpu_busy / len(kernels),
        "inference_latency_ns": latency,
        "gpu_idle_ns": latency - gpu_busy,
        "kernel_launches": float(len(kernels)),
    }


def _check_metric_identities(trace: Trace) -> list[Finding]:
    """Compare the SKIP pipeline's metrics against the independent sweep."""
    from repro.skip.metrics import compute_metrics

    if not trace.iterations:
        return []
    try:
        metrics = compute_metrics(trace)
    except ReproError as exc:
        return [Finding(T010, Severity.ERROR, "metrics",
                        f"SKIP metrics could not be computed: {exc}")]

    findings = []
    for iteration in metrics.iterations:
        mark = next(m for m in trace.iterations if m.index == iteration.index)
        independent = _independent_iteration_metrics(trace, mark.ts, mark.ts_end)
        if independent is None:
            findings.append(Finding(
                T010, Severity.ERROR, f"iteration {iteration.index}",
                "no kernels or operators found by the independent sweep"))
            continue
        for name, expected in independent.items():
            actual = getattr(iteration, name)
            if not math.isclose(actual, expected,
                                rel_tol=_METRIC_REL_TOL, abs_tol=1e-3):
                findings.append(Finding(
                    T010, Severity.ERROR,
                    f"iteration {iteration.index}",
                    f"{name}: pipeline computed {actual} but independent "
                    f"recomputation gives {expected}"))
    return findings
