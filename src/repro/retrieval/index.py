"""Vector indexes — the retrieval substrate for the RAG pipeline.

The paper motivates its latency focus with RAG (Section II-A): retrieval
produces context, generation consumes it, and per-user latency (TTFT) is what
batching trades away. This module provides the retrieval half as a real,
executable substrate: a brute-force index and an IVF (inverted-file) index
with k-means coarse quantization, both NumPy-based.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SearchResult:
    """Top-k neighbors for one query."""

    ids: np.ndarray      # (k,) int64
    scores: np.ndarray   # (k,) float32, higher is more similar

    def __len__(self) -> int:
        return len(self.ids)


def _as_matrix(vectors: np.ndarray, dim: int | None = None) -> np.ndarray:
    array = np.asarray(vectors, dtype=np.float32)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2:
        raise ConfigurationError("vectors must be 1-D or 2-D")
    if dim is not None and array.shape[1] != dim:
        raise ConfigurationError(
            f"vector dim {array.shape[1]} does not match index dim {dim}")
    return array


def _normalize(matrix: np.ndarray) -> np.ndarray:
    # Compute norms in float64: float32 sums of squares underflow for
    # denormal inputs and produce scores far outside [-1, 1]. Vectors with
    # effectively zero norm are left as-is (they score ~0 against anything).
    norms = np.linalg.norm(matrix.astype(np.float64), axis=1, keepdims=True)
    norms[norms < 1e-12] = 1.0
    return (matrix.astype(np.float64) / norms).astype(np.float32)


class BruteForceIndex:
    """Exact cosine-similarity search over all stored vectors."""

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ConfigurationError("dim must be positive")
        self.dim = dim
        self._vectors = np.empty((0, dim), dtype=np.float32)
        self._ids = np.empty((0,), dtype=np.int64)

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> None:
        """Add vectors (rows) with optional explicit ids."""
        matrix = _normalize(_as_matrix(vectors, self.dim))
        if ids is None:
            start = len(self._ids)
            new_ids = np.arange(start, start + len(matrix), dtype=np.int64)
        else:
            new_ids = np.asarray(ids, dtype=np.int64)
            if len(new_ids) != len(matrix):
                raise ConfigurationError("ids and vectors must align")
        self._vectors = np.vstack([self._vectors, matrix])
        self._ids = np.concatenate([self._ids, new_ids])

    def search(self, query: np.ndarray, k: int = 5) -> SearchResult:
        """Exact top-k by cosine similarity."""
        if len(self._ids) == 0:
            raise ConfigurationError("index is empty")
        if k <= 0:
            raise ConfigurationError("k must be positive")
        vector = _normalize(_as_matrix(query, self.dim))[0]
        scores = self._vectors @ vector
        k = min(k, len(scores))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        return SearchResult(ids=self._ids[top], scores=scores[top])


class IVFIndex:
    """Inverted-file index: k-means coarse cells, probe the nearest few.

    Approximate but much faster than brute force on large corpora; recall is
    controlled by ``nprobe``.
    """

    def __init__(self, dim: int, n_cells: int = 16, nprobe: int = 2,
                 seed: int = 0, kmeans_iters: int = 8) -> None:
        if dim <= 0 or n_cells <= 0 or nprobe <= 0 or kmeans_iters <= 0:
            raise ConfigurationError("dim, n_cells, nprobe, kmeans_iters must be positive")
        if nprobe > n_cells:
            raise ConfigurationError("nprobe cannot exceed n_cells")
        self.dim = dim
        self.n_cells = n_cells
        self.nprobe = nprobe
        self._seed = seed
        self._kmeans_iters = kmeans_iters
        self._centroids: np.ndarray | None = None
        self._cells: list[tuple[np.ndarray, np.ndarray]] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def train(self, vectors: np.ndarray) -> None:
        """Fit the coarse quantizer with a few k-means iterations."""
        matrix = _normalize(_as_matrix(vectors, self.dim))
        if len(matrix) < self.n_cells:
            raise ConfigurationError(
                f"need at least {self.n_cells} training vectors, got {len(matrix)}")
        rng = np.random.default_rng(self._seed)
        centroids = matrix[rng.choice(len(matrix), self.n_cells, replace=False)]
        for _ in range(self._kmeans_iters):
            assignment = np.argmax(matrix @ centroids.T, axis=1)
            for cell in range(self.n_cells):
                members = matrix[assignment == cell]
                if len(members):
                    centroids[cell] = members.mean(axis=0)
            centroids = _normalize(centroids)
        self._centroids = centroids
        self._cells = [(np.empty((0, self.dim), dtype=np.float32),
                        np.empty((0,), dtype=np.int64))
                       for _ in range(self.n_cells)]

    def add(self, vectors: np.ndarray, ids: np.ndarray | None = None) -> None:
        """Add vectors to their nearest cells (index must be trained)."""
        if self._centroids is None:
            raise ConfigurationError("train() the index before add()")
        matrix = _normalize(_as_matrix(vectors, self.dim))
        if ids is None:
            new_ids = np.arange(self._size, self._size + len(matrix), dtype=np.int64)
        else:
            new_ids = np.asarray(ids, dtype=np.int64)
            if len(new_ids) != len(matrix):
                raise ConfigurationError("ids and vectors must align")
        assignment = np.argmax(matrix @ self._centroids.T, axis=1)
        for cell in range(self.n_cells):
            mask = assignment == cell
            if not mask.any():
                continue
            old_vecs, old_ids = self._cells[cell]
            self._cells[cell] = (np.vstack([old_vecs, matrix[mask]]),
                                 np.concatenate([old_ids, new_ids[mask]]))
        self._size += len(matrix)

    def search(self, query: np.ndarray, k: int = 5) -> SearchResult:
        """Approximate top-k: scan the ``nprobe`` nearest cells."""
        if self._centroids is None or self._size == 0:
            raise ConfigurationError("index is empty or untrained")
        if k <= 0:
            raise ConfigurationError("k must be positive")
        vector = _normalize(_as_matrix(query, self.dim))[0]
        cell_scores = self._centroids @ vector
        probe = np.argsort(-cell_scores)[:self.nprobe]
        candidate_vecs = []
        candidate_ids = []
        for cell in probe:
            vecs, ids = self._cells[cell]
            if len(ids):
                candidate_vecs.append(vecs)
                candidate_ids.append(ids)
        if not candidate_vecs:
            return SearchResult(ids=np.empty(0, dtype=np.int64),
                                scores=np.empty(0, dtype=np.float32))
        vecs = np.vstack(candidate_vecs)
        ids = np.concatenate(candidate_ids)
        scores = vecs @ vector
        k = min(k, len(scores))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        return SearchResult(ids=ids[top], scores=scores[top])
