"""Per-operator cost attribution."""

import pytest

from repro.errors import AnalysisError
from repro.skip import (
    DependencyGraph,
    attribute_costs,
    attribution_table,
)


@pytest.fixture(scope="module")
def report(gpt2_profile):
    return attribute_costs(gpt2_profile.depgraph)


def test_totals_match_metrics(gpt2_profile, report):
    metrics = gpt2_profile.metrics
    iterations = len(metrics.iterations)
    assert report.total_tklqt_ns == pytest.approx(
        metrics.tklqt_ns * iterations, rel=1e-6)
    assert report.total_kernel_ns == pytest.approx(
        metrics.gpu_busy_ns * iterations, rel=1e-6)


def test_launch_counts_sum(gpt2_profile, report):
    assert sum(op.launches for op in report.operators) == len(
        gpt2_profile.depgraph.launches)


def test_linear_owns_most_launch_tax(report):
    """GEMM-heavy aten::linear should dominate GPT-2's launch accounting
    (one GEMM + one bias epilogue per projection)."""
    top = report.top_by("launches", 3)
    assert any(op.name == "aten::linear" for op in top)


def test_gelu_sub_kernels_attributed_to_gelu(report):
    gelu = next(op for op in report.operators if op.name == "aten::gelu")
    # gelu_new fans out into 8 kernels per invocation.
    assert gelu.launches_per_invocation == pytest.approx(8.0)


def test_view_ops_launch_nothing(report):
    transpose = next(op for op in report.operators
                     if op.name == "aten::transpose")
    assert transpose.launches == 0
    assert transpose.cpu_time_ns > 0  # but they still cost dispatch


def test_tklqt_share_sums_to_one(report):
    total = sum(report.tklqt_share(op.name) for op in report.operators
                if op.launches)
    assert total == pytest.approx(1.0)


def test_unknown_operator_rejected(report):
    with pytest.raises(AnalysisError):
        report.tklqt_share("aten::nonexistent")


def test_unknown_sort_key_rejected(report):
    with pytest.raises(AnalysisError):
        report.top_by("bogus_key")


def test_table_renders(report):
    text = attribution_table(report, k=5)
    assert "aten::" in text
    assert "TKLQT%" in text
    assert len(text.splitlines()) == 2 + 5


def test_empty_graph_rejected():
    from repro.trace import Trace
    graph = DependencyGraph(roots=[], launches=[], graph_kernels=[],
                            trace=Trace())
    with pytest.raises(AnalysisError):
        attribute_costs(graph)
