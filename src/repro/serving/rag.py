"""RAG pipeline: retrieval + generation TTFT (Section II-A).

The paper's RAG motivation: the final generation phase can be batched for
throughput, but batching inflates each user's time-to-first-token. This
module composes the real vector-index substrate (``repro.retrieval``) with
the engine-backed generation latency so the trade-off is measurable.

Retrieval executes for real (NumPy); its measured wall time is converted to
nanoseconds and added to the simulated generation latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.retrieval.index import BruteForceIndex, IVFIndex
from repro.serving.latency import LatencyModel
from repro.workloads.config import ModelConfig


@dataclass(frozen=True)
class RagLatency:
    """Latency breakdown for one RAG query batch."""

    retrieval_ns: float
    ttft_ns: float          # generation prefill only
    generation_ns: float    # prefill + decode
    batch_size: int
    context_tokens: int

    @property
    def user_ttft_ns(self) -> float:
        """What the user perceives: retrieval plus generation TTFT."""
        return self.retrieval_ns + self.ttft_ns

    @property
    def total_ns(self) -> float:
        return self.retrieval_ns + self.generation_ns


class RagPipeline:
    """Retrieve top-k context chunks, then generate an answer."""

    def __init__(
        self,
        index: BruteForceIndex | IVFIndex,
        model: ModelConfig,
        latency: LatencyModel,
        tokens_per_chunk: int = 128,
        top_k: int = 4,
    ) -> None:
        if tokens_per_chunk <= 0 or top_k <= 0:
            raise ConfigurationError("tokens_per_chunk and top_k must be positive")
        self.index = index
        self.model = model
        self.latency = latency
        self.tokens_per_chunk = tokens_per_chunk
        self.top_k = top_k

    def query(
        self,
        embeddings: np.ndarray,
        question_tokens: int = 64,
        output_tokens: int = 128,
        batch_size: int | None = None,
    ) -> RagLatency:
        """Answer a batch of queries.

        Args:
            embeddings: Query embedding(s), shape (dim,) or (batch, dim).
            question_tokens: Prompt tokens besides retrieved context.
            output_tokens: Tokens to generate.
            batch_size: Generation batch size (defaults to the number of
                query embeddings).
        """
        queries = np.atleast_2d(np.asarray(embeddings, dtype=np.float32))
        effective_batch = len(queries) if batch_size is None else batch_size
        if effective_batch <= 0:
            raise ConfigurationError("batch_size must be positive")

        start = time.perf_counter()
        for query in queries:
            self.index.search(query, k=self.top_k)
        retrieval_ns = (time.perf_counter() - start) * 1e9

        context_tokens = self.top_k * self.tokens_per_chunk
        prompt_len = question_tokens + context_tokens
        ttft = self.latency.ttft_ns(self.model, effective_batch, prompt_len)
        total = self.latency.generation_ns(self.model, effective_batch,
                                           prompt_len, output_tokens)
        return RagLatency(
            retrieval_ns=retrieval_ns,
            ttft_ns=ttft,
            generation_ns=total,
            batch_size=effective_batch,
            context_tokens=context_tokens,
        )
