"""Self-hosting: SKIP analyzes the simulator's own serving traces.

The acceptance path of the observability layer: a ``repro.serving``
continuous-batching simulation records itself, exports a Chrome trace, and
SKIP's depgraph/metrics/classification/fusion pipeline runs on that file
unmodified — both through the library API and the CLI
(``repro serve ... --emit-trace out.json && repro skip analyze out.json``).
"""

import pytest

from repro.cli import main
from repro.hardware import INTEL_H100
from repro.obs import RunRecorder, recording_to_trace
from repro.serving import (
    ContinuousBatchPolicy,
    LatencyModel,
    poisson_requests,
    simulate_continuous_batching,
)
from repro.skip import (
    Boundedness,
    DependencyGraph,
    analyze_trace,
    classify_metrics,
    compute_metrics,
)
from repro.trace import chrome
from repro.workloads import GPT2


@pytest.fixture(scope="module")
def serving_trace_file(tmp_path_factory):
    latency = LatencyModel(INTEL_H100)
    requests = poisson_requests(rate_per_s=30, duration_s=0.25,
                                prompt_len=64, output_tokens=4, seed=7)
    recorder = RunRecorder()
    simulate_continuous_batching(
        requests, GPT2, latency, ContinuousBatchPolicy(max_active=4),
        recorder=recorder)
    path = tmp_path_factory.mktemp("obs") / "serving.json"
    chrome.dump(recording_to_trace(recorder, latency, GPT2), path)
    return path


def test_skip_pipeline_runs_on_serving_trace(serving_trace_file):
    trace = chrome.load(serving_trace_file)
    graph = DependencyGraph.from_trace(trace)
    metrics = compute_metrics(trace, graph)
    assert metrics.tklqt_ns > 0
    assert metrics.akd_ns > 0
    assert metrics.kernel_launches > 0
    assert classify_metrics(metrics) in (Boundedness.CPU_BOUND,
                                         Boundedness.GPU_BOUND)
    # GPT-2 BS<=4 prefill/decode on Intel+H100 sits deep in the paper's
    # CPU-bound region; the serving trace must agree with the engine-level
    # classification.
    assert classify_metrics(metrics) is Boundedness.CPU_BOUND


def test_fusion_mining_runs_on_serving_trace(serving_trace_file):
    trace = chrome.load(serving_trace_file)
    analyses = analyze_trace(trace, lengths=(2, 4))
    assert all(a.ideal_speedup >= 1.0 for a in analyses)
    assert any(a.total_instances > 0 for a in analyses)


def test_cli_serve_emit_then_skip_analyze(tmp_path, capsys):
    """The documented two-command self-hosting flow."""
    out = tmp_path / "run.json"
    code = main(["serve", "--rate", "20", "--duration", "0.2",
                 "--prompt-len", "64", "--output-tokens", "3",
                 "--emit-trace", str(out)])
    serve_out = capsys.readouterr().out
    assert code == 0
    assert out.exists()
    assert "TTFT" in serve_out

    code = main(["skip", "analyze", str(out)])
    analyze_out = capsys.readouterr().out
    assert code == 0
    assert "TKLQT" in analyze_out
    assert "classification" in analyze_out
    assert "repro.obs" in analyze_out  # provenance metadata survived
