"""Serving-run ASCII timeline rendering."""

import pytest

from repro.errors import AnalysisError
from repro.obs import RunRecorder, StepKind
from repro.viz import TimelineOptions, render_serving_timeline


@pytest.fixture()
def small_recorder():
    rec = RunRecorder()
    rec.on_admitted(0, arrival_ns=0.0, admitted_ns=0.0)
    rec.record_step(StepKind.PREFILL, 0.0, 40.0, 1, queue_depth=3)
    rec.on_first_token(0, 40.0)
    rec.record_step(StepKind.DECODE, 40.0, 60.0, 1)
    rec.on_token(0, 100.0)
    rec.on_completed(0, 100.0)
    return rec


def test_lanes_and_legend(small_recorder):
    text = render_serving_timeline(small_recorder,
                                   TimelineOptions(width=50))
    lines = text.splitlines()
    assert lines[0].startswith("serving timeline")
    assert any(line.startswith("prefill") and "P" in line for line in lines)
    assert any(line.startswith("decode") and "d" in line for line in lines)
    assert any(line.startswith("active") for line in lines)
    assert any(line.startswith("queue") and "3" in line for line in lines)
    assert "legend" in lines[-1]


def test_prefill_before_decode(small_recorder):
    text = render_serving_timeline(small_recorder,
                                   TimelineOptions(width=100))
    # Lanes start after the label column ("prefill" + one space).
    prefill = next(l for l in text.splitlines() if l.startswith("prefill"))[8:]
    decode = next(l for l in text.splitlines() if l.startswith("decode"))[8:]
    assert prefill.index("P") < decode.index("d")


def test_renders_recorded_run(recorded_run):
    recorder, _, _, _ = recorded_run
    text = render_serving_timeline(recorder, TimelineOptions(width=80))
    assert "prefill" in text and "decode" in text


def test_empty_recorder_rejected():
    with pytest.raises(AnalysisError):
        render_serving_timeline(RunRecorder())


def test_bad_window_rejected(small_recorder):
    with pytest.raises(AnalysisError):
        render_serving_timeline(
            small_recorder,
            TimelineOptions(width=50, begin_ns=10.0, end_ns=10.0))
