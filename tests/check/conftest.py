"""Shared fixtures for the static-analysis tests.

One cached GPT-2 lowering plus its TP=2 sharding; the known-bad fixtures
each test derives are cheap mutations of these.
"""

from __future__ import annotations

import pytest

from repro.engine import EngineConfig, TPConfig, run, shard_lowered
from repro.engine.lowering import lower_graph
from repro.hardware import GH200
from repro.workloads import GPT2, build_graph


@pytest.fixture(scope="package")
def gpt2_lowered():
    return lower_graph(build_graph(GPT2, batch_size=1, seq_len=64))


@pytest.fixture(scope="package")
def gpt2_tp2():
    return TPConfig(degree=2)


@pytest.fixture(scope="package")
def gpt2_sharded(gpt2_lowered, gpt2_tp2):
    return shard_lowered(gpt2_lowered, gpt2_tp2)


@pytest.fixture(scope="package")
def tp2_trace():
    """A real TP=2 engine trace (two iterations)."""
    return run(GPT2, GH200, batch_size=1, seq_len=64,
               config=EngineConfig(iterations=2),
               tp=TPConfig(degree=2)).trace
