"""Model configurations.

:class:`ModelConfig` describes a Transformer at the granularity the paper
cares about: architecture family (encoder-only vs decoder-only), dimensions,
and the structural choices that change the eager operator stream (fused QKV
projection, norm type, activation, positional scheme).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Arch(enum.Enum):
    """Transformer architecture family (Table III of the paper)."""

    ENCODER_ONLY = "encoder-only"
    DECODER_ONLY = "decoder-only"


class Norm(enum.Enum):
    LAYERNORM = "layernorm"
    RMSNORM = "rmsnorm"


class Activation(enum.Enum):
    GELU = "gelu"
    SILU = "silu"          # SwiGLU MLP (gate/up/down)
    GEGLU = "geglu"        # Gemma-style gated GELU


class Positional(enum.Enum):
    LEARNED = "learned"
    ROPE = "rope"


@dataclass(frozen=True)
class ModelConfig:
    """Structural description of a Transformer LLM.

    Attributes:
        name: HuggingFace-style model id.
        arch: Encoder-only or decoder-only.
        hidden: Model (embedding) dimension.
        layers: Number of Transformer blocks.
        heads: Attention heads.
        kv_heads: KV heads (``< heads`` means grouped-query attention).
        head_dim: Per-head dimension (usually ``hidden // heads``; Gemma
            deviates).
        intermediate: MLP inner dimension.
        vocab: Vocabulary size.
        max_positions: Maximum sequence length.
        norm: LayerNorm or RMSNorm.
        activation: MLP activation family.
        positional: Learned absolute embeddings or rotary.
        fused_qkv: True when Q/K/V come from one projection (GPT-2's Conv1D),
            which changes the eager op stream (one GEMM + split vs three
            GEMMs).
        moe_experts: Number of MLP experts (0 = dense MLP). Eager
            mixture-of-experts iterates over experts with gather/scatter,
            multiplying the per-layer operator count.
        moe_top_k: Experts activated per token.
        attention_bias: Whether attention projections carry bias terms.
        has_pooler: Encoder pooler head (BERT-style).
        tie_embeddings: LM head shares the embedding matrix.
    """

    name: str
    arch: Arch
    hidden: int
    layers: int
    heads: int
    intermediate: int
    vocab: int
    max_positions: int = 2048
    kv_heads: int | None = None
    head_dim: int | None = None
    norm: Norm = Norm.LAYERNORM
    activation: Activation = Activation.GELU
    positional: Positional = Positional.LEARNED
    fused_qkv: bool = False
    attention_bias: bool = True
    mlp_bias: bool = True
    has_pooler: bool = False
    tie_embeddings: bool = True
    moe_experts: int = 0
    moe_top_k: int = 2

    def __post_init__(self) -> None:
        for field_name in ("hidden", "layers", "heads", "intermediate", "vocab"):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(f"{self.name}: {field_name} must be positive")
        if self.hidden % self.heads != 0 and self.head_dim is None:
            raise ConfigurationError(
                f"{self.name}: hidden {self.hidden} not divisible by heads "
                f"{self.heads} and no explicit head_dim"
            )
        if self.effective_kv_heads > self.heads:
            raise ConfigurationError(f"{self.name}: kv_heads exceeds heads")
        if self.heads % self.effective_kv_heads != 0:
            raise ConfigurationError(f"{self.name}: heads not divisible by kv_heads")
        if self.moe_experts < 0:
            raise ConfigurationError(f"{self.name}: moe_experts must be >= 0")
        if self.moe_experts and not (0 < self.moe_top_k <= self.moe_experts):
            raise ConfigurationError(
                f"{self.name}: moe_top_k must be in [1, moe_experts]")

    # ------------------------------------------------------------------
    # Derived dimensions
    # ------------------------------------------------------------------
    @property
    def effective_head_dim(self) -> int:
        return self.head_dim if self.head_dim is not None else self.hidden // self.heads

    @property
    def effective_kv_heads(self) -> int:
        return self.kv_heads if self.kv_heads is not None else self.heads

    @property
    def q_dim(self) -> int:
        return self.heads * self.effective_head_dim

    @property
    def kv_dim(self) -> int:
        return self.effective_kv_heads * self.effective_head_dim

    @property
    def is_gated_mlp(self) -> bool:
        """SwiGLU/GeGLU MLPs have three projections instead of two."""
        return self.activation in (Activation.SILU, Activation.GEGLU)

    @property
    def is_moe(self) -> bool:
        """Mixture-of-experts MLP."""
        return self.moe_experts > 0

    def param_count(self) -> int:
        """Approximate parameter count (embeddings + blocks + head)."""
        embed = self.vocab * self.hidden
        if self.positional is Positional.LEARNED:
            embed += self.max_positions * self.hidden
        per_layer = (
            self.hidden * self.q_dim          # Q
            + 2 * self.hidden * self.kv_dim   # K, V
            + self.q_dim * self.hidden        # O
        )
        mlp_copies = max(1, self.moe_experts)
        if self.is_gated_mlp:
            per_layer += mlp_copies * 3 * self.hidden * self.intermediate
        else:
            per_layer += mlp_copies * 2 * self.hidden * self.intermediate
        if self.is_moe:
            per_layer += self.hidden * self.moe_experts  # router
        per_layer += 4 * self.hidden  # norm parameters (two norms, scale+shift)
        total = embed + self.layers * per_layer
        if not self.tie_embeddings and self.arch is Arch.DECODER_ONLY:
            total += self.vocab * self.hidden
        if self.has_pooler:
            total += self.hidden * self.hidden
        return int(total)

    def summary(self) -> str:
        """One-line human-readable description."""
        millions = self.param_count() / 1e6
        return (
            f"{self.name} ({self.arch.value}, {self.layers}L x {self.hidden}d, "
            f"{self.heads}h, ~{millions:.0f}M params)"
        )
