"""Serving-scenario composition: batching, agentic chains, RAG.

Every policy runs as a process on the shared sim-backed runtime
(:mod:`repro.serving.runtime`); :func:`simulate_serving` is the one entry
point, and the per-policy ``simulate_*`` helpers are thin wrappers over it.
The pre-runtime standalone loops survive in :mod:`repro.serving.legacy` as
parity oracles.
"""

from repro.serving.batcher import (
    ServingReport,
    StaticBatchPolicy,
    simulate_static_batching,
)
from repro.serving.cluster import (
    AutoscaleConfig,
    ClusterRunResult,
    ClusterRuntime,
    RouterPolicy,
    RouterStats,
    ScaleEvent,
    simulate_cluster,
)
from repro.serving.continuous import (
    ContinuousBatchPolicy,
    simulate_continuous_batching,
)
from repro.serving.latency import LatencyModel
from repro.serving.planner import (
    BatchDecision,
    PlannerConfig,
    PromptChunk,
    StepPlan,
    StepPlanner,
    chunk_plan,
    decode_schedule_label,
)
from repro.serving.pipeline import (
    AgenticPipeline,
    PipelineResult,
    PipelineServingPolicy,
    PipelineStage,
    StageLatency,
)
from repro.serving.rag import (
    RagLatency,
    RagPipeline,
    RagServingPolicy,
    measured_retrieval_ns,
)
from repro.serving.runtime import (
    AdmissionQueue,
    EngineSession,
    KvReplicaStats,
    ReplicaStats,
    ServingRunResult,
    ServingRuntime,
    simulate_serving,
)
from repro.serving.scheduler import (
    ClassifiedRequest,
    PriorityPolicy,
    PriorityReport,
    RequestClass,
    simulate_priority_scheduling,
)
from repro.serving.requests import (
    Request,
    RequestOutcome,
    ServingRequest,
    poisson_requests,
    queue_delay_ns,
)
from repro.serving.speculative import (
    SpeculativeConfig,
    SpeculativeLatency,
    SpeculativeServingPolicy,
    speculative_generation_ns,
)

__all__ = [
    "AdmissionQueue",
    "AgenticPipeline",
    "AutoscaleConfig",
    "BatchDecision",
    "ClusterRunResult",
    "ClusterRuntime",
    "ContinuousBatchPolicy",
    "RouterPolicy",
    "RouterStats",
    "ScaleEvent",
    "ServingRequest",
    "simulate_cluster",
    "PlannerConfig",
    "PromptChunk",
    "StepPlan",
    "StepPlanner",
    "chunk_plan",
    "decode_schedule_label",
    "simulate_continuous_batching",
    "EngineSession",
    "LatencyModel",
    "PipelineResult",
    "PipelineServingPolicy",
    "PipelineStage",
    "ClassifiedRequest",
    "PriorityPolicy",
    "PriorityReport",
    "RagLatency",
    "RagPipeline",
    "RagServingPolicy",
    "KvReplicaStats",
    "ReplicaStats",
    "RequestClass",
    "simulate_priority_scheduling",
    "Request",
    "RequestOutcome",
    "ServingReport",
    "ServingRunResult",
    "ServingRuntime",
    "simulate_serving",
    "SpeculativeConfig",
    "SpeculativeLatency",
    "SpeculativeServingPolicy",
    "speculative_generation_ns",
    "StageLatency",
    "StaticBatchPolicy",
    "measured_retrieval_ns",
    "poisson_requests",
    "queue_delay_ns",
    "simulate_static_batching",
]
