"""Agentic pipelines: chained model invocations (Section II-A).

In agentic systems an orchestrator LLM's output feeds downstream models; the
paper's point is that per-stage latency *compounds*, so batching-induced
latency anywhere in the chain degrades end-to-end responsiveness. This module
composes per-stage generation latencies from the engine-backed LatencyModel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.latency import LatencyModel
from repro.workloads.config import ModelConfig


@dataclass(frozen=True)
class PipelineStage:
    """One model invocation in an agentic chain.

    ``consumes_upstream`` adds the previous stage's generated tokens to this
    stage's prompt (output chaining).
    """

    name: str
    model: ModelConfig
    prompt_len: int
    output_tokens: int
    consumes_upstream: bool = True

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.output_tokens <= 0:
            raise ConfigurationError(
                f"stage {self.name}: lengths must be positive")


@dataclass(frozen=True)
class StageLatency:
    """Latency of one executed stage."""

    stage: str
    prompt_len: int
    ttft_ns: float
    total_ns: float


@dataclass(frozen=True)
class PipelineResult:
    """End-to-end latency of a pipeline execution."""

    stages: tuple[StageLatency, ...]

    @property
    def total_ns(self) -> float:
        return sum(s.total_ns for s in self.stages)

    @property
    def total_ttft_ns(self) -> float:
        """Sum of per-stage TTFTs — the 'first signs of progress' latency."""
        return sum(s.ttft_ns for s in self.stages)

    def slowest_stage(self) -> StageLatency:
        return max(self.stages, key=lambda s: s.total_ns)


class AgenticPipeline:
    """A chain of model invocations evaluated on one platform."""

    def __init__(self, stages: list[PipelineStage], latency: LatencyModel) -> None:
        if not stages:
            raise ConfigurationError("pipeline needs at least one stage")
        self.stages = list(stages)
        self.latency = latency

    def run(self, batch_size: int = 1,
            recorder: RunRecorder | None = None) -> PipelineResult:
        """Evaluate end-to-end latency when every stage runs at ``batch_size``.

        Larger batch sizes model a deployment that batches concurrent
        pipeline executions at each stage; latency compounds per stage. A
        recorder sees each stage as a prefill step (engine-shaped) followed
        by a closed-form generation step on one compounding clock.
        """
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        results: list[StageLatency] = []
        upstream_tokens = 0
        clock = 0.0
        for stage in self.stages:
            prompt = stage.prompt_len + (upstream_tokens
                                         if stage.consumes_upstream else 0)
            ttft = self.latency.ttft_ns(stage.model, batch_size, prompt)
            total = self.latency.generation_ns(stage.model, batch_size, prompt,
                                               stage.output_tokens)
            if recorder is not None:
                recorder.record_step(
                    StepKind.PREFILL, clock, ttft, batch_size,
                    shape=EngineShape(stage.model.name, batch_size, prompt))
                if total > ttft:
                    recorder.record_step(StepKind.GENERATION, clock + ttft,
                                         total - ttft, batch_size)
            clock += total
            results.append(StageLatency(stage=stage.name, prompt_len=prompt,
                                        ttft_ns=ttft, total_ns=total))
            upstream_tokens = stage.output_tokens
        return PipelineResult(stages=tuple(results))
