"""ASCII timeline rendering."""

import pytest

from repro.errors import AnalysisError
from repro.trace import Trace, TraceBuilder
from repro.viz.timeline import TimelineOptions, render_timeline


@pytest.fixture()
def simple_trace():
    builder = TraceBuilder()
    builder.begin_iteration(0.0)
    op = builder.begin_operator("aten::linear", 0.0)
    builder.launch_kernel(10.0, 5.0, "gemm", 50.0, 30.0)
    builder.end_operator(op, 20.0)
    builder.runtime_call("cudaDeviceSynchronize", 20.0, 60.0)
    builder.end_iteration(80.0)
    return builder.finish()


def test_lanes_present(simple_trace):
    text = render_timeline(simple_trace)
    lines = text.splitlines()
    assert lines[1].startswith("cpu ops")
    assert lines[2].startswith("launches")
    assert lines[3].startswith("gpu")
    assert "legend" in lines[4]


def test_marks_appear_in_expected_positions(simple_trace):
    text = render_timeline(simple_trace, TimelineOptions(width=80))
    lines = text.splitlines()
    op_lane = lines[1][9:]       # lanes start after the 9-char label column
    kernel_lane = lines[3][9:]
    assert "=" in op_lane
    assert "#" in kernel_lane
    # Operator occupies the first quarter (0..20 of 0..80), kernel the
    # second half (50..80).
    assert op_lane[0] == "="
    assert kernel_lane[-2] == "#"
    assert kernel_lane[10] == "."


def test_sync_rendered_differently(simple_trace):
    text = render_timeline(simple_trace)
    launch_lane = text.splitlines()[2]
    assert "|" in launch_lane
    assert "s" in launch_lane


def test_window_selection(simple_trace):
    text = render_timeline(simple_trace,
                           TimelineOptions(width=40, begin_ns=40.0,
                                           end_ns=90.0))
    kernel_lane = text.splitlines()[3]
    assert "#" in kernel_lane
    op_lane = text.splitlines()[1][9:]
    assert "=" not in op_lane  # the op ends at 20, before the window


def test_engine_trace_renders(gpt2_profile):
    text = render_timeline(gpt2_profile.trace, TimelineOptions(width=120))
    assert text.count("\n") == 4


def test_validation(simple_trace):
    with pytest.raises(AnalysisError):
        render_timeline(Trace())
    with pytest.raises(AnalysisError):
        TimelineOptions(width=5)
    with pytest.raises(AnalysisError):
        render_timeline(simple_trace, TimelineOptions(begin_ns=10, end_ns=5))
