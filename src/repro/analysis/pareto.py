"""Latency-throughput Pareto frontiers from batch sweeps.

Section III-B frames the operator's problem as balancing user-visible
latency against hardware utilization. For a prefill sweep, each batch size
is a (TTFT, tokens-per-second) point; the Pareto-efficient subset is the
menu an operator actually chooses from, and comparing frontiers across
platforms shows where each coupling paradigm is the right buy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sweep import SweepResult
from repro.errors import AnalysisError


@dataclass(frozen=True)
class OperatingPoint:
    """One (batch, latency, throughput) choice on a platform."""

    platform: str
    batch_size: int
    ttft_ns: float
    tokens_per_second: float

    def dominates(self, other: "OperatingPoint") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        no_worse = (self.ttft_ns <= other.ttft_ns
                    and self.tokens_per_second >= other.tokens_per_second)
        better = (self.ttft_ns < other.ttft_ns
                  or self.tokens_per_second > other.tokens_per_second)
        return no_worse and better


def operating_points(sweep: SweepResult, platform: str,
                     seq_len: int) -> list[OperatingPoint]:
    """All swept operating points for one platform."""
    if seq_len <= 0:
        raise AnalysisError("seq_len must be positive")
    points = []
    for batch in sweep.batch_sizes:
        ttft = sweep.point(platform, batch).ttft_ns
        points.append(OperatingPoint(
            platform=platform,
            batch_size=batch,
            ttft_ns=ttft,
            tokens_per_second=batch * seq_len / (ttft / 1e9),
        ))
    return points


def pareto_frontier(points: list[OperatingPoint]) -> list[OperatingPoint]:
    """The non-dominated subset, sorted by latency ascending."""
    if not points:
        raise AnalysisError("no operating points given")
    frontier = [p for p in points
                if not any(q.dominates(p) for q in points if q is not p)]
    return sorted(frontier, key=lambda p: p.ttft_ns)


def cross_platform_frontier(sweep: SweepResult, seq_len: int,
                            platforms: list[str] | None = None
                            ) -> list[OperatingPoint]:
    """The joint frontier across platforms — which system to buy for which
    latency budget."""
    names = platforms if platforms is not None else sweep.platforms()
    combined: list[OperatingPoint] = []
    for name in names:
        combined.extend(operating_points(sweep, name, seq_len))
    return pareto_frontier(combined)
