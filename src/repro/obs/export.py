"""Export a recorded serving run as a SKIP-analyzable :class:`Trace`.

Self-hosting is the point: the serving loops are priced by memoized engine
runs, and every engine run already produces a full PyTorch-Profiler-style
trace. The exporter replays each recorded step's engine shape through the
same :class:`LatencyModel`, time-shifts the engine trace onto the serving
clock at the step's recorded begin, and remaps correlation ids so the
spliced steps coexist in one trace. Each step becomes one ``ProfilerStep``
iteration, so SKIP's depgraph/metrics/classification/fusion pipeline — and
``repro skip analyze`` on the dumped Chrome JSON — runs unmodified on the
simulator's own serving traces.

Steps priced by closed-form math rather than an engine run (static
batching's generation tail) carry no :class:`EngineShape`; they are
synthesized as a single ``serving::<kind>`` operator launching one covering
kernel, which keeps every iteration analyzable.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Mapping

from repro.errors import AnalysisError
from repro.obs.events import StepEvent, StepKind
from repro.obs.recorder import RunRecorder
from repro.trace.events import (
    KernelEvent,
    LAUNCH_KERNEL,
    OperatorEvent,
    RuntimeEvent,
)
from repro.trace.trace import Trace
from repro.workloads.config import ModelConfig
from repro.workloads.graph import Phase

if TYPE_CHECKING:  # avoids a cycle: serving.latency imports the engine,
    # which imports repro.obs for its recorder hooks.
    from repro.serving.latency import LatencyModel


def recording_to_trace(
    recorder: RunRecorder,
    latency: LatencyModel,
    model: ModelConfig | Mapping[str, ModelConfig],
    metadata: dict | None = None,
    devices_per_replica: int = 1,
) -> Trace:
    """Build one Chrome-trace-exportable :class:`Trace` from a recorded run.

    Args:
        recorder: The recorder a serving simulation wrote into.
        latency: The same latency model the simulation used (its platform,
            mode, and engine config determine the replayed step traces).
        model: The served model, or a name -> config mapping when the run
            mixed models (agentic pipelines, speculative decoding).
        metadata: Extra trace metadata (merged over the defaults).
        devices_per_replica: GPU devices (tensor-parallel shards) per engine
            replica. Steps from replica ``r`` land on device ordinals
            ``r * devices_per_replica ...`` and on their own CPU thread ids,
            so multi-replica runs export as one coherent multi-GPU trace.

    Raises:
        AnalysisError: when no steps were recorded or a step references a
            model the mapping does not contain.
    """
    if not recorder.steps:
        raise AnalysisError("recorded run has no steps to export")
    if devices_per_replica <= 0:
        raise AnalysisError("devices_per_replica must be positive")
    models = model if isinstance(model, Mapping) else {model.name: model}

    out = Trace(metadata={
        "source": "repro.obs",
        "platform": latency.platform.name,
        "mode": latency.mode.value,
        "models": sorted(models),
        **(metadata or {}),
    })
    if recorder.kv_pools or recorder.kv_events:
        # The KV audit trail rides in the trace so `repro check trace` can
        # re-verify pool accounting (rules K001-K004) from the file alone.
        out.metadata["kv"] = {
            "pools": {str(replica): dict(info)
                      for replica, info in sorted(recorder.kv_pools.items())},
            "events": [event.to_dict() for event in recorder.kv_events],
        }
    if recorder.cluster_meta or recorder.routing:
        # Routing decisions ride along too, so `repro check trace` can
        # re-verify conservation and session affinity (rules R001/R002).
        out.metadata["cluster"] = {
            **recorder.cluster_meta,
            "events": [dict(event) for event in recorder.routing],
        }
    if recorder.host_meta:
        # Host-topology description plus every core-time grant, so `repro
        # check trace` can re-verify the CPU schedule (rules N001-N004).
        out.metadata["host"] = {
            **recorder.host_meta,
            "grants": [dict(grant) for grant in recorder.host_grants],
        }
    splicer = _Splicer(out, devices_per_replica=devices_per_replica)
    marks: list[tuple[float, float]] = []
    for step in sorted(recorder.steps, key=lambda s: (s.ts_ns, s.index)):
        if step.shape is not None:
            if step.shape.model not in models:
                raise AnalysisError(
                    f"step {step.index} references model "
                    f"{step.shape.model!r} not passed to the exporter")
            result = latency.run_for(
                models[step.shape.model],
                batch_size=step.shape.batch_size,
                seq_len=step.shape.seq_len,
                phase=Phase(step.shape.phase),
                context_len=step.shape.context_len,
            )
            splicer.splice(result.trace, step)
        else:
            splicer.synthesize(step, latency)
        marks.append((step.ts_ns, step.ts_end_ns))
    for ts, ts_end in _merge_overlapping(marks):
        out.mark_iteration(ts, ts_end)
    out.sort()
    out.validate()
    return out


def _merge_overlapping(
        marks: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Coalesce iteration marks that strictly overlap.

    Replicas step concurrently, and ProfilerStep iterations must not overlap
    (trace lint T008). Marks that merely touch stay separate — single-replica
    runs, whose steps are contiguous, export exactly as before.
    """
    merged: list[tuple[float, float]] = []
    for ts, ts_end in sorted(marks):
        if merged and ts < merged[-1][1]:
            last_ts, last_end = merged[-1]
            merged[-1] = (last_ts, max(last_end, ts_end))
        else:
            merged.append((ts, ts_end))
    return merged


class _Splicer:
    """Copies engine-trace events onto the serving clock with fresh ids.

    Multi-replica runs shift each replica's events onto its own device
    ordinals (``replica * devices_per_replica + local``) and its own CPU
    thread ids, so kernels from concurrently-stepping replicas never collide
    on one (device, stream) lane and each replica's operator nesting stays
    self-contained. Replica 0's offsets are zero, which keeps single-replica
    exports byte-identical to the pre-replica format.
    """

    def __init__(self, out: Trace, devices_per_replica: int = 1) -> None:
        self._out = out
        self._devices_per_replica = devices_per_replica
        self._correlation = itertools.count(1)
        self._graph_correlation = itertools.count(1)
        self._seq = itertools.count(0)

    def _offsets(self, step: StepEvent) -> tuple[int, int]:
        """(device, tid) offsets for the step's replica. The tid stride is
        ``devices_per_replica + 1`` because an engine run uses one dispatch
        tid per device plus the main thread."""
        device = step.replica * self._devices_per_replica
        tid = step.replica * (self._devices_per_replica + 1)
        return device, tid

    def splice(self, engine_trace: Trace, step: StepEvent) -> None:
        """Copy the engine trace's first measured iteration into the step."""
        if not engine_trace.iterations:
            raise AnalysisError(
                f"engine trace for step {step.index} has no iterations")
        device_offset, tid_offset = self._offsets(step)
        mark = engine_trace.iterations[0]
        offset = step.ts_ns - mark.ts
        in_window = lambda e: mark.ts <= e.ts < mark.ts_end

        ops = sorted((o for o in engine_trace.operators if in_window(o)),
                     key=lambda o: (o.ts, o.seq, o.event_id))
        for op in ops:
            self._out.add(OperatorEvent(
                name=op.name, ts=op.ts + offset, dur=op.dur,
                tid=op.tid + tid_offset, seq=next(self._seq)))

        remap: dict[int, int] = {}
        for call in engine_trace.runtime_calls:
            if not in_window(call):
                continue
            correlation = -1
            if call.is_launch and call.correlation_id >= 0:
                correlation = next(self._correlation)
                remap[call.correlation_id] = correlation
            self._out.add(RuntimeEvent(
                name=call.name, ts=call.ts + offset, dur=call.dur,
                tid=call.tid + tid_offset, correlation_id=correlation))

        for kernel in engine_trace.kernels:
            if kernel.correlation_id >= 0:
                correlation = remap.get(kernel.correlation_id)
                if correlation is None:
                    continue  # launched outside the spliced iteration
            elif in_window(kernel):
                correlation = -next(self._graph_correlation) - 1_000_000_000
            else:
                continue
            self._out.add(KernelEvent(
                name=kernel.name, ts=kernel.ts + offset, dur=kernel.dur,
                tid=0, correlation_id=correlation, stream=kernel.stream,
                device=kernel.device + device_offset, flops=kernel.flops,
                bytes_moved=kernel.bytes_moved))

    #: Stream id synthesized KV swap transfers land on — a copy-engine lane
    #: distinct from the compute streams (7+), so interconnect traffic shows
    #: up as its own row in trace viewers.
    COPY_STREAM = 15
    #: Compute stream every device's in-order stream uses (mirrors
    #: ``SimCore.add_device``). ``KernelEvent`` is a slots dataclass, so the
    #: default cannot be read off the class attribute.
    COMPUTE_STREAM = 7

    def synthesize(self, step: StepEvent, latency: LatencyModel) -> None:
        """Emit a minimal analyzable iteration for a closed-form step."""
        device_offset, tid_offset = self._offsets(step)
        platform = latency.platform
        call_dur = min(platform.launch_call_cpu_ns, step.dur_ns)
        kernel_ts = min(step.ts_ns + platform.launch_latency_ns,
                        step.ts_end_ns)
        correlation = next(self._correlation)
        swap = step.kind in (StepKind.SWAP_OUT, StepKind.SWAP_IN)
        stream = self.COPY_STREAM if swap else self.COMPUTE_STREAM
        self._out.add(OperatorEvent(
            name=f"serving::{step.kind.value}", ts=step.ts_ns,
            dur=step.dur_ns, tid=1 + tid_offset, seq=next(self._seq)))
        self._out.add(RuntimeEvent(
            name=LAUNCH_KERNEL, ts=step.ts_ns, dur=call_dur,
            tid=1 + tid_offset, correlation_id=correlation))
        self._out.add(KernelEvent(
            name=f"serving_{step.kind.value}_kernel", ts=kernel_ts,
            dur=step.ts_end_ns - kernel_ts, tid=0,
            correlation_id=correlation, stream=stream,
            device=device_offset))


def dump_causality(log, path) -> None:
    """Write a causality log as a JSON sidecar (schema ``repro.causality/v1``).

    The sidecar is the input to ``repro check hb --log``: a serving or
    engine run records its scheduling decisions once, and the
    happens-before pass verifies them offline, the same division of labor
    as the Chrome-trace export and ``repro check trace``.
    """
    log.dump(path)


def load_causality(path):
    """Read a causality sidecar back into a :class:`CausalityLog`."""
    from repro.sim.causality import CausalityLog

    return CausalityLog.load(path)
