"""KV-pool accounting verification (rules ``K...``).

The kvcache subsystem logs every pool mutation as a
:class:`repro.kvcache.events.KvCacheEvent`; exported traces carry the log in
their ``kv`` metadata. This pass replays the log against four invariants:

* **K001** — no block leaked: every allocation is matched by a free,
  preempt, or swap-out before the run ends, and nothing stays stranded in
  host memory.
* **K002** — the pool never over-commits: the reconstructed allocation
  counter matches each event's recorded ``allocated`` field and never
  exceeds the registered capacity.
* **K003** — residency precedes decode: a sequence that was swapped out
  (or never allocated) must not take part in a decode step until its
  blocks are back on the device.
* **K004** — recompute implies prior free: a fresh ``alloc`` for a
  sequence that still holds blocks (or is parked in host memory) means the
  preemption path dropped an eviction.

Shared-prefix (copy-on-write) events — ``prefix_alloc`` / ``prefix_ref`` /
``prefix_deref`` / ``prefix_free``, whose ``seq`` field is the prefix key —
are replayed alongside them: refcount misuse (double free, free while
shared, ref of an unknown group) raises rule **R003** from
:mod:`repro.check.clusterrules`, and a group still resident at run end is
a K001 leak like any other block.

The pass is pure log replay — it needs no simulation state, so it runs on
an exported trace file years after the run.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.check.clusterrules import R003
from repro.check.findings import Finding, Severity, register_rule
from repro.kvcache.events import KvCacheEvent

K001 = register_rule("K001", "kv", "KV blocks leaked at run end")
K002 = register_rule(
    "K002", "kv", "KV pool over-commit or inconsistent accounting")
K003 = register_rule(
    "K003", "kv", "decode of a sequence whose KV blocks are not resident")
K004 = register_rule(
    "K004", "kv", "sequence re-allocated without a prior free or preempt")


def check_kv_events(events: Sequence[KvCacheEvent],
                    capacity_blocks: int | None,
                    where: str = "kv") -> list[Finding]:
    """Replay one replica's KV event log against K001-K004."""
    findings: list[Finding] = []
    held: dict[int, int] = {}
    host: dict[int, int] = {}
    shared: dict[int, list[int]] = {}  # prefix key -> [blocks, refcount]
    running = 0

    def err(rule: str, index: int, event: KvCacheEvent, message: str) -> None:
        findings.append(Finding(
            rule, Severity.ERROR,
            f"{where} event {index} ({event.kind} seq {event.seq})", message))

    for index, event in enumerate(events):
        seq = event.seq
        resident = held.get(seq, 0)
        if event.kind == "alloc":
            if resident > 0:
                err(K004, index, event,
                    f"seq {seq} allocated again while still holding "
                    f"{resident} blocks (no free/preempt in between)")
            if seq in host:
                err(K004, index, event,
                    f"seq {seq} allocated fresh blocks while {host[seq]} of "
                    f"its blocks sit in host memory; swap-in was expected")
            held[seq] = resident + event.blocks
            running += event.blocks
        elif event.kind == "grow":
            if resident == 0:
                err(K004, index, event,
                    f"seq {seq} grew without a prior allocation")
            held[seq] = resident + event.blocks
            running += event.blocks
        elif event.kind in ("free", "preempt"):
            if event.blocks != resident:
                err(K002, index, event,
                    f"{event.kind} of {event.blocks} blocks but seq {seq} "
                    f"held {resident}")
            held.pop(seq, None)
            running -= resident
        elif event.kind == "swap_out":
            if resident == 0:
                err(K002, index, event,
                    f"seq {seq} swapped out while holding no blocks")
            elif event.blocks != resident:
                err(K002, index, event,
                    f"swap_out of {event.blocks} blocks but seq {seq} "
                    f"held {resident}")
            held.pop(seq, None)
            running -= resident
            host[seq] = host.get(seq, 0) + event.blocks
        elif event.kind == "swap_in":
            parked = host.pop(seq, None)
            if parked is None:
                err(K002, index, event,
                    f"seq {seq} swapped in but was never swapped out")
            elif event.blocks != parked:
                err(K002, index, event,
                    f"swap_in of {event.blocks} blocks but {parked} were "
                    f"parked in host memory")
            held[seq] = held.get(seq, 0) + event.blocks
            running += event.blocks
        elif event.kind == "prefix_alloc":
            if seq in shared:
                err(R003, index, event,
                    f"shared group {seq} allocated while already resident "
                    f"({shared[seq][0]} blocks, refcount {shared[seq][1]})")
            if event.refs != 1:
                err(K002, index, event,
                    f"fresh shared group {seq} recorded refcount "
                    f"{event.refs}, expected 1")
            shared[seq] = [event.blocks, 1]
            running += event.blocks
        elif event.kind == "prefix_ref":
            group = shared.get(seq)
            if group is None:
                err(R003, index, event,
                    f"reference taken on unknown shared group {seq}")
            else:
                group[1] += 1
                if event.refs != group[1]:
                    err(K002, index, event,
                        f"shared group {seq} recorded refcount "
                        f"{event.refs} but replay reconstructs {group[1]}")
        elif event.kind == "prefix_deref":
            group = shared.get(seq)
            if group is None:
                err(R003, index, event,
                    f"double free: dereference of unknown shared group "
                    f"{seq}")
            elif group[1] <= 0:
                err(R003, index, event,
                    f"double free: shared group {seq} dereferenced at "
                    f"refcount 0")
            else:
                group[1] -= 1
                if event.refs != group[1]:
                    err(K002, index, event,
                        f"shared group {seq} recorded refcount "
                        f"{event.refs} but replay reconstructs {group[1]}")
        elif event.kind == "prefix_free":
            group = shared.pop(seq, None)
            if group is None:
                err(R003, index, event,
                    f"double free: eviction of unknown shared group {seq}")
            else:
                if group[1] > 0:
                    err(R003, index, event,
                        f"shared group {seq} freed while refcount is "
                        f"{group[1]} (free-while-shared)")
                if event.blocks != group[0]:
                    err(K002, index, event,
                        f"prefix_free of {event.blocks} blocks but group "
                        f"{seq} held {group[0]}")
                running -= group[0]
        elif event.kind == "decode":
            if seq in host:
                err(K003, index, event,
                    f"seq {seq} decoded while {host[seq]} of its blocks are "
                    f"swapped out; swap-in must precede the decode step")
            elif resident == 0:
                err(K003, index, event,
                    f"seq {seq} decoded while holding no KV blocks")
        if running != event.allocated:
            err(K002, index, event,
                f"recorded allocated={event.allocated} but replay "
                f"reconstructs {running}")
        if capacity_blocks is not None and event.allocated > capacity_blocks:
            err(K002, index, event,
                f"allocated={event.allocated} exceeds pool capacity "
                f"{capacity_blocks}")

    leaked = {seq: blocks for seq, blocks in held.items() if blocks > 0}
    if leaked:
        findings.append(Finding(
            K001, Severity.ERROR, f"{where} run end",
            f"{sum(leaked.values())} device blocks leaked by "
            f"{len(leaked)} sequence(s): {sorted(leaked)[:5]}"))
    if host:
        findings.append(Finding(
            K001, Severity.ERROR, f"{where} run end",
            f"{sum(host.values())} blocks stranded in host memory by "
            f"sequence(s): {sorted(host)[:5]}"))
    if shared:
        findings.append(Finding(
            K001, Severity.ERROR, f"{where} run end",
            f"{sum(g[0] for g in shared.values())} blocks held by "
            f"{len(shared)} shared prefix group(s) never freed: "
            f"{sorted(shared)[:5]}"))
    return findings


def check_kv_metadata(kv_meta: Mapping, where: str = "kv") -> list[Finding]:
    """Verify the ``kv`` metadata block of an exported trace.

    The exporter writes ``{"pools": {replica: {capacity_blocks, ...}},
    "events": [...]}``; events are grouped by replica and each replica's
    log is replayed against its registered capacity.
    """
    findings: list[Finding] = []
    pools = kv_meta.get("pools", {})
    events = [KvCacheEvent.from_dict(payload)
              for payload in kv_meta.get("events", [])]
    by_replica: dict[int, list[KvCacheEvent]] = {}
    for event in events:
        by_replica.setdefault(event.replica, []).append(event)
    for replica in sorted(set(by_replica) | {int(r) for r in pools}):
        pool = pools.get(str(replica))
        replica_events = by_replica.get(replica, [])
        if pool is None and replica_events:
            findings.append(Finding(
                K002, Severity.ERROR, f"{where} replica {replica}",
                f"{len(replica_events)} kv events recorded for replica "
                f"{replica} but no pool was registered for it"))
        capacity = pool.get("capacity_blocks") if pool else None
        findings.extend(check_kv_events(
            replica_events, capacity, where=f"{where} replica {replica}"))
    return findings


def kv_events_from_managers(managers: Iterable) -> list[KvCacheEvent]:
    """Flatten per-replica manager logs (replay-order within each replica)."""
    events: list[KvCacheEvent] = []
    for manager in managers:
        events.extend(manager.events)
    return events
