"""Tensor-parallel execution: configuration and the sharding pass.

Megatron-style tensor parallelism at op granularity: attention and MLP
kernels split evenly across ``degree`` devices (column-parallel first
projection, row-parallel second), so each device runs the same op stream
with ``1/degree`` of the kernel work. The two row-parallel boundaries per
layer — the attention output projection and the MLP down projection —
produce partial sums, so the sharding pass inserts a ring all-reduce after
each; its message is the boundary op's full (unsharded) output tensor and
its duration comes from the GPU-GPU interconnect model, not the roofline.

Everything that reads or writes the full hidden state — embeddings, norms,
residual adds, the LM head — is replicated: every device runs it at full
size. MoE layers are left unsharded too (expert parallelism is a different
axis than tensor parallelism).

``shard_lowered`` is the identity at ``degree == 1``; TP=1 runs execute the
exact lowering the single-device engine always had, which is what makes the
bit-parity guarantee against the legacy executor possible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.engine.lowering import KernelTask, LoweredOp, lower_op
from repro.errors import ConfigurationError
from repro.hardware.interconnect import InterconnectSpec, NVLINK4_P2P
from repro.workloads import ops


class DispatchMode(enum.Enum):
    """How CPU dispatch work is distributed across devices.

    ``SINGLE_THREAD`` is the PyTorch-default shape: one Python thread
    dispatches every op and issues one ``cudaLaunchKernel`` per device, so
    launch overhead compounds with the TP degree — the multi-GPU CPU
    bottleneck the characterization literature reports. ``THREAD_PER_DEVICE``
    gives every device its own dispatch thread (one process per device on
    the simulation core) that only synchronizes at collectives and iteration
    boundaries.
    """

    SINGLE_THREAD = "single"
    THREAD_PER_DEVICE = "per-device"


@dataclass(frozen=True)
class TPConfig:
    """Tensor-parallel run configuration.

    Attributes:
        degree: Number of devices the model is sharded across (1 = off).
        dispatch: CPU dispatch topology (see :class:`DispatchMode`).
        link: GPU-GPU interconnect the collectives run over.
    """

    degree: int = 1
    dispatch: DispatchMode = DispatchMode.SINGLE_THREAD
    link: InterconnectSpec = NVLINK4_P2P

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ConfigurationError("tp degree must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.degree > 1


TP_DISABLED = TPConfig()


def validate_tp(tp: TPConfig, heads: int, model_name: str = "model") -> None:
    """Reject TP degrees the sharding pass cannot realize.

    Attention shards whole heads across devices, so the degree must divide
    the model's head count; otherwise per-device kernel shapes would be
    fractional. Raises :class:`~repro.errors.ConfigurationError` with an
    actionable message instead of letting the engine fail deep inside the
    roofline with an opaque shape error.
    """
    if not tp.enabled:
        return
    if heads % tp.degree != 0:
        valid = [d for d in range(1, heads + 1) if heads % d == 0]
        raise ConfigurationError(
            f"tp degree {tp.degree} does not divide {model_name}'s "
            f"{heads} attention heads; valid degrees: "
            f"{', '.join(str(d) for d in valid)}")

#: Label substrings selecting ops that shard across devices.
_SHARD_MARKERS = (".attn.", ".mlp.")

#: Label substrings that force replication even inside attn/MLP scopes:
#: residual adds and norms consume the full hidden state, and MoE experts
#: are a different parallelism axis.
_REPLICATE_MARKERS = (".moe.", "residual", "norm")

#: Row-parallel boundary projections whose outputs are partial sums and
#: need an all-reduce: attention output and MLP down projections across the
#: BERT / GPT-2 / Llama-family label vocabularies.
_ALLREDUCE_BOUNDARIES = (
    ".attn.o_proj",
    ".attn.output.dense",
    ".mlp.down_proj",
    ".mlp.c_proj",
    ".mlp.fc2",
)


def is_sharded_label(label: str) -> bool:
    """True when the op with this label shards across TP devices."""
    if any(marker in label for marker in _REPLICATE_MARKERS):
        return False
    return any(marker in label for marker in _SHARD_MARKERS)


def needs_allreduce(label: str) -> bool:
    """True when the op with this label produces partial sums under TP."""
    if ".moe." in label:
        return False
    return label.endswith(_ALLREDUCE_BOUNDARIES)


def _shard_kernel(kernel: KernelTask, degree: float) -> KernelTask:
    """One device's share of a kernel: work terms divide, identity stays."""
    return replace(
        kernel,
        flops=kernel.flops / degree,
        bytes_read=kernel.bytes_read / degree,
        bytes_written=kernel.bytes_written / degree,
        members=tuple(_shard_kernel(m, degree) for m in kernel.members),
    )


def shard_lowered(lowered: list[LoweredOp], tp: TPConfig) -> list[LoweredOp]:
    """Apply the TP-sharding pass to a lowered op stream.

    Returns the per-device op stream (all devices are symmetric, so one list
    describes each of them): shardable kernels carry ``1/degree`` of their
    work, replicated ops are untouched, and a ring all-reduce op follows
    every row-parallel boundary. Identity at ``degree == 1``.
    """
    if not tp.enabled:
        return lowered
    degree = float(tp.degree)
    out: list[LoweredOp] = []
    for lowered_op in lowered:
        op = lowered_op.op
        if lowered_op.kernels and is_sharded_label(op.label):
            out.append(LoweredOp(
                op, tuple(_shard_kernel(k, degree) for k in lowered_op.kernels)))
        else:
            out.append(lowered_op)
        if lowered_op.kernels and needs_allreduce(op.label):
            message = op.bytes_written
            out.append(lower_op(ops.all_reduce(
                f"{op.label}.allreduce", message, tp.degree)))
    return out


def count_allreduces(lowered: list[LoweredOp]) -> int:
    """Collective kernels per iteration in a (sharded) lowering."""
    return sum(1 for lo in lowered for k in lo.kernels if k.is_collective)
