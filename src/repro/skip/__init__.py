"""SKIP: System-aware Kernel Inference Profiler (the paper's core tool)."""

from repro.skip.attribution import (
    AttributionReport,
    OperatorAttribution,
    attribute_costs,
    attribution_table,
)
from repro.skip.classify import (
    Boundedness,
    TransitionPoint,
    classify_metrics,
    find_transition,
)
from repro.skip.depgraph import DependencyGraph, LaunchRecord, OpNode
from repro.skip.diff import KernelDelta, ProfileDiff, diff_metrics, diff_report
from repro.skip.roofline import (
    KernelRegime,
    KernelRooflinePoint,
    RooflineReport,
    classify_kernels,
)
from repro.skip.fusion import (
    DEFAULT_CHAIN_LENGTHS,
    FusionAnalysis,
    analyze_segments,
    analyze_trace,
    best_speedup,
    combined_plan,
)
from repro.skip.metrics import (
    DeviceMetrics,
    IterationMetrics,
    KernelAggregate,
    SkipMetrics,
    compute_metrics,
)
from repro.skip.profiler import ProfileResult, SkipProfiler
from repro.skip.proximity import (
    ChainStats,
    MiningResult,
    kernel_segments,
    mine_chains,
    select_nonoverlapping,
)
from repro.skip.report import (
    fusion_report,
    metrics_report,
    profile_report,
    top_kernels_report,
    transition_report,
)

__all__ = [
    "AttributionReport",
    "Boundedness",
    "OperatorAttribution",
    "attribute_costs",
    "attribution_table",
    "ChainStats",
    "DEFAULT_CHAIN_LENGTHS",
    "DependencyGraph",
    "FusionAnalysis",
    "KernelDelta",
    "KernelRegime",
    "KernelRooflinePoint",
    "ProfileDiff",
    "RooflineReport",
    "classify_kernels",
    "diff_metrics",
    "diff_report",
    "IterationMetrics",
    "KernelAggregate",
    "LaunchRecord",
    "MiningResult",
    "OpNode",
    "ProfileResult",
    "DeviceMetrics",
    "SkipMetrics",
    "SkipProfiler",
    "TransitionPoint",
    "analyze_segments",
    "analyze_trace",
    "best_speedup",
    "classify_metrics",
    "combined_plan",
    "compute_metrics",
    "find_transition",
    "fusion_report",
    "kernel_segments",
    "metrics_report",
    "mine_chains",
    "profile_report",
    "select_nonoverlapping",
    "top_kernels_report",
    "transition_report",
]
