"""Execution modes as processes on the simulation core.

The engine's launch-per-kernel and CUDA-graph modes are written as
generator processes scheduled by :class:`repro.sim.SimCore`. Three process
shapes exist:

* **Single dispatch thread** (launch mode): one CPU process walks the op
  stream and issues one ``cudaLaunchKernel`` per device per kernel — the
  PyTorch-default topology, where launch overhead compounds with the TP
  degree. At TP=1 this process performs exactly the floating-point
  operations of the legacy single-device executor, in the same order, so
  its traces are bit-identical to the legacy ones.
* **Per-device dispatch threads** (launch mode): one CPU process per device
  (trace ``tid`` = 1 + device), each launching only to its own device.
  Processes meet at collectives and at an end-of-iteration barrier via the
  core's rendezvous.
* **Graph replay** (one process): replays the captured kernel chain on every
  device; per-device arrival chaining, collectives joined across devices.

Collective kernels (``KernelTask.is_collective``) price their duration with
the link's ring all-reduce model and start simultaneously on every device at
the earliest instant all streams can take them.
"""

from __future__ import annotations

from typing import Hashable

from repro.engine.lowering import KernelTask, LoweredOp
from repro.engine.modes import ExecutionMode
from repro.hardware.platform import Platform
from repro.obs.recorder import RunRecorder
from repro.sim.core import Process, SimCore
from repro.sim.resources import StreamResource
from repro.trace.builder import TraceBuilder
from repro.trace.events import DEVICE_SYNCHRONIZE, GRAPH_LAUNCH
from repro.workloads.ops import OpKind

_CHILD_OP_NAMES = {
    OpKind.LINEAR: "aten::addmm",
    OpKind.MATMUL: "aten::bmm",
}


def kernel_duration(platform: Platform, kernel: KernelTask,
                    floor_scale: float = 1.0) -> float:
    """Duration of one (non-collective) kernel task on a platform.

    Proximity-fused kernels (``members`` set) execute as the sum of their
    members' durations — the paper's assumption that fusion changes launch
    counts, not kernel work.
    """
    if kernel.members:
        return sum(kernel_duration(platform, member, floor_scale)
                   for member in kernel.members)
    return (platform.kernel_duration_ns(kernel.flops, kernel.bytes_moved,
                                        floor_scale=floor_scale)
            * kernel.duration_scale)


def _op_plans(lowered, core, platform, mode, config, world):
    """Precompute per-op dispatch timings and per-kernel durations.

    Every value here is a pure function of the lowering, platform, mode,
    config, and link spec — none depends on simulation state — so hoisting
    the arithmetic out of the iteration loop reuses the *exact same floats*
    the per-iteration computation produced. Traces are bit-identical; only
    per-event Python work shrinks (property lookups, duration recomputation).

    Returns one ``(aten_name, dispatch, epilogue, pre, child_name, kernels)``
    tuple per lowered op, where ``kernels`` is a tuple of
    ``(kernel, duration_ns, is_collective_here)`` and ``child_name`` is
    already None whenever the child-op scope would not be emitted.
    """
    fuses = mode.fuses_elementwise
    guard = config.compiled_guard_ns / platform.cpu.dispatch_score
    plans = []
    for lowered_op in lowered:
        op = lowered_op.op
        dispatch = guard if fuses else platform.dispatch_ns(op.dispatch_cost_ns)
        epilogue = dispatch * config.dispatch_epilogue_fraction
        pre = dispatch - epilogue
        child_name = _CHILD_OP_NAMES.get(op.kind)
        if not (child_name and lowered_op.kernels and not fuses):
            child_name = None
        kernels = tuple(
            (kernel,
             core.link.allreduce_ns(kernel.comm_bytes, world)
             if kernel.is_collective and world > 1
             else kernel_duration(platform, kernel),
             kernel.is_collective and world > 1)
            for kernel in lowered_op.kernels)
        plans.append((op.aten_name, dispatch, epilogue, pre, child_name,
                      kernels))
    return plans


def _end_iteration_sync(builder: TraceBuilder, streams: list[StreamResource],
                        cpu: float, config, measured: bool = True,
                        tid: int | None = None) -> float:
    """Emit the end-of-iteration synchronize and advance the CPU clock.

    Waits for every stream the dispatching thread feeds. Warm-up iterations
    (``measured=False``) synchronize like real ones but leave no iteration
    mark, so analyses skip them.
    """
    free = max(stream.free_at for stream in streams)
    wait = max(0.0, free - cpu)
    builder.runtime_call(DEVICE_SYNCHRONIZE, cpu, config.sync_call_ns + wait,
                         tid=tid)
    cpu += config.sync_call_ns + wait
    if measured:
        builder.end_iteration(cpu)
    return cpu + config.inter_iteration_gap_ns


# ---------------------------------------------------------------------------
# Launch-per-kernel execution, single dispatch thread
# ---------------------------------------------------------------------------

def single_thread_launch_process(
    core: SimCore,
    builder: TraceBuilder,
    lowered: list[LoweredOp],
    platform: Platform,
    mode: ExecutionMode,
    config,
    recorder: RunRecorder | None = None,
) -> Process:
    """One CPU thread dispatches ops and launches to every device in turn."""
    streams = core.streams()
    world = len(streams)
    thread = core.cpu_threads[0]
    stream0 = streams[0]
    # Hot-loop hoists: platform costs are @property lookups and the plan
    # arithmetic is iteration-invariant (see _op_plans).
    launch_cpu = platform.launch_call_cpu_ns
    launch_latency = platform.launch_latency_ns
    gap = config.stream_kernel_gap_ns
    queue_depth = config.launch_queue_depth
    child_frac = config.child_dispatch_fraction
    plans = _op_plans(lowered, core, platform, mode, config, world)
    cpu = 0.0
    launched = 0
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured:
            builder.begin_iteration(cpu)
        for aten_name, dispatch, epilogue, pre, child_name, kernels in plans:
            parent = builder.begin_operator(aten_name, cpu)
            child = None
            if child_name is not None:
                cpu += pre * (1.0 - child_frac)
                child = builder.begin_operator(child_name, cpu)
                cpu += pre * child_frac
            else:
                cpu += pre
            thread.occupy(dispatch)

            for kernel, duration, is_collective in kernels:
                # Bounded launch queue: the CPU cannot run more than
                # `launch_queue_depth` launches ahead of kernel starts.
                backlog_index = launched - queue_depth
                if backlog_index >= 0:
                    cpu = max(cpu, stream0.nth_start(backlog_index))
                if is_collective:
                    calls = []
                    for _ in streams:
                        calls.append(cpu)
                        cpu += launch_cpu
                        thread.occupy(launch_cpu)
                    start_at = max(
                        stream.earliest_start(calls[di] + launch_latency, gap)
                        for di, stream in enumerate(streams))
                    for di, stream in enumerate(streams):
                        start, _end = stream.submit(start_at, duration,
                                                    gap_ns=gap)
                        builder.launch_kernel(
                            calls[di], launch_cpu,
                            kernel.name, start, duration,
                            stream=stream.stream_id, device=stream.device,
                            flops=kernel.flops, bytes_moved=kernel.bytes_moved)
                        if recorder is not None:
                            recorder.observe_launch_delay(start - calls[di])
                            recorder.observe_launch_queue(
                                stream.pending_at(calls[di]))
                    core.link.record(duration, start_at)
                else:
                    for stream in streams:
                        call_ts = cpu
                        arrival = call_ts + launch_latency
                        start, _end = stream.submit(arrival, duration,
                                                    gap_ns=gap)
                        builder.launch_kernel(
                            call_ts, launch_cpu,
                            kernel.name, start, duration,
                            stream=stream.stream_id, device=stream.device,
                            flops=kernel.flops, bytes_moved=kernel.bytes_moved)
                        if recorder is not None:
                            recorder.observe_launch_delay(start - call_ts)
                            recorder.observe_launch_queue(
                                stream.pending_at(call_ts))
                        cpu += launch_cpu
                        thread.occupy(launch_cpu)
                launched += 1

            if child is not None:
                builder.end_operator(child, cpu)
            cpu += epilogue
            builder.end_operator(parent, cpu)

        cpu = _end_iteration_sync(builder, streams, cpu, config,
                                  measured=measured)
        cpu = yield ("at", cpu)


# ---------------------------------------------------------------------------
# Launch-per-kernel execution, one dispatch thread per device
# ---------------------------------------------------------------------------

def per_device_launch_processes(
    core: SimCore,
    builder: TraceBuilder,
    lowered: list[LoweredOp],
    platform: Platform,
    mode: ExecutionMode,
    config,
    recorder: RunRecorder | None = None,
    tenant: Hashable = None,
) -> list[Process]:
    """One dispatch process per device; rendezvous at collectives/barriers.

    ``tenant`` namespaces the rendezvous keys, so two independent engine
    process groups (two models, two replicas) can share one
    :class:`~repro.sim.core.SimCore` without their collectives colliding.
    The default (``None``) keeps the historical keys, so single-tenant runs
    are bit-identical to before the parameter existed.
    """
    world = len(core.devices)
    return [
        _device_dispatch_process(
            core, builder, lowered, platform, mode, config,
            recorder if device_index == 0 else None, device_index, world,
            tenant=tenant)
        for device_index in range(world)
    ]


def _device_dispatch_process(
    core: SimCore,
    builder: TraceBuilder,
    lowered: list[LoweredOp],
    platform: Platform,
    mode: ExecutionMode,
    config,
    recorder: RunRecorder | None,
    device_index: int,
    world: int,
    tenant: Hashable = None,
) -> Process:
    def rendezvous_key(*key: Hashable) -> tuple[Hashable, ...]:
        return key if tenant is None else (tenant, *key)

    stream = core.devices[device_index].compute_stream
    thread = core.cpu_threads[device_index]
    tid = thread.tid
    leader = device_index == 0
    launch_cpu = platform.launch_call_cpu_ns
    launch_latency = platform.launch_latency_ns
    gap = config.stream_kernel_gap_ns
    queue_depth = config.launch_queue_depth
    child_frac = config.child_dispatch_fraction
    plans = _op_plans(lowered, core, platform, mode, config, world)
    cpu = 0.0
    launched = 0
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured and leader:
            builder.begin_iteration(cpu)
        for op_index, plan in enumerate(plans):
            aten_name, dispatch, epilogue, pre, child_name, kernels = plan
            parent = builder.begin_operator(aten_name, cpu, tid=tid)
            child = None
            if child_name is not None:
                cpu += pre * (1.0 - child_frac)
                child = builder.begin_operator(child_name, cpu, tid=tid)
                cpu += pre * child_frac
            else:
                cpu += pre
            thread.occupy(dispatch)

            for kernel_index, (kernel, duration, is_collective) in enumerate(
                    kernels):
                backlog_index = launched - queue_depth
                if backlog_index >= 0:
                    cpu = max(cpu, stream.nth_start(backlog_index))
                call_ts = cpu
                arrival = call_ts + launch_latency
                if is_collective:
                    ready = stream.earliest_start(arrival, gap)
                    rdv = core.rendezvous(
                        rendezvous_key("allreduce", iteration, op_index,
                                       kernel_index), world)
                    start_at = yield ("join", rdv, ready)
                    start, _end = stream.submit(start_at, duration, gap_ns=gap)
                    if leader:
                        core.link.record(duration, start)
                else:
                    start, _end = stream.submit(arrival, duration, gap_ns=gap)
                builder.launch_kernel(
                    call_ts, launch_cpu, kernel.name,
                    start, duration, stream=stream.stream_id,
                    device=stream.device, tid=tid,
                    flops=kernel.flops, bytes_moved=kernel.bytes_moved)
                if recorder is not None:
                    recorder.observe_launch_delay(start - call_ts)
                    recorder.observe_launch_queue(stream.pending_at(call_ts))
                cpu += launch_cpu
                thread.occupy(launch_cpu)
                launched += 1

            if child is not None:
                builder.end_operator(child, cpu)
            cpu += epilogue
            builder.end_operator(parent, cpu)

        # Per-device synchronize, then an iteration barrier so all threads
        # enter the next iteration together (mirroring a framework-level
        # step boundary).
        wait = max(0.0, stream.free_at - cpu)
        builder.runtime_call(DEVICE_SYNCHRONIZE, cpu,
                             config.sync_call_ns + wait, tid=tid)
        cpu += config.sync_call_ns + wait
        barrier = core.rendezvous(rendezvous_key("iteration-end", iteration),
                                  world)
        cpu = yield ("join", barrier, cpu)
        if measured and leader:
            builder.end_iteration(cpu)
        cpu += config.inter_iteration_gap_ns


# ---------------------------------------------------------------------------
# CUDA-graph execution (reduce-overhead / max-autotune)
# ---------------------------------------------------------------------------

def graph_replay_process(
    core: SimCore,
    builder: TraceBuilder,
    lowered: list[LoweredOp],
    platform: Platform,
    config,
) -> Process:
    """Replay the captured kernel chain on every device."""
    streams = core.streams()
    world = len(streams)
    thread = core.cpu_threads[0]
    launch_cpu = platform.launch_call_cpu_ns
    launch_latency = platform.launch_latency_ns
    kernel_gap = config.graph_replay_kernel_gap_ns
    replay_dispatch = platform.dispatch_ns(config.graph_replay_dispatch_ns)
    # Durations are iteration-invariant (same floats every replay), so
    # compute the whole chain once; see _op_plans for the invariance note.
    plan = [
        (kernel,
         core.link.allreduce_ns(kernel.comm_bytes, world)
         if kernel.is_collective and world > 1
         else kernel_duration(platform, kernel,
                              floor_scale=config.graph_kernel_floor_scale),
         kernel.is_collective and world > 1)
        for lo in lowered for kernel in lo.kernels]
    cpu = 0.0
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured:
            builder.begin_iteration(cpu)
        parent = builder.begin_operator("cuda_graph::replay", cpu)
        cpu += replay_dispatch
        thread.occupy(replay_dispatch)
        arrivals = []
        for _ in streams:
            call_ts = cpu
            builder.runtime_call(GRAPH_LAUNCH, call_ts, launch_cpu)
            cpu += launch_cpu
            thread.occupy(launch_cpu)
            arrivals.append(call_ts + launch_latency)
        for kernel, duration, is_collective in plan:
            if is_collective:
                start_at = max(
                    stream.earliest_start(arrivals[di])
                    for di, stream in enumerate(streams))
                for di, stream in enumerate(streams):
                    start, end = stream.submit(start_at, duration)
                    builder.enqueue_graph_kernel(
                        kernel.name, start, duration,
                        stream=stream.stream_id, device=stream.device,
                        flops=kernel.flops, bytes_moved=kernel.bytes_moved)
                    arrivals[di] = end + kernel_gap
                core.link.record(duration, start_at)
            else:
                for di, stream in enumerate(streams):
                    start, end = stream.submit(arrivals[di], duration)
                    builder.enqueue_graph_kernel(
                        kernel.name, start, duration,
                        stream=stream.stream_id, device=stream.device,
                        flops=kernel.flops, bytes_moved=kernel.bytes_moved)
                    arrivals[di] = end + kernel_gap
        builder.end_operator(parent, cpu)
        cpu = _end_iteration_sync(builder, streams, cpu, config,
                                  measured=measured)
        cpu = yield ("at", cpu)
