"""Vector index substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.retrieval import BruteForceIndex, IVFIndex


@pytest.fixture()
def corpus():
    rng = np.random.default_rng(0)
    return rng.normal(size=(300, 16)).astype(np.float32)


def test_brute_force_finds_exact_vector(corpus):
    index = BruteForceIndex(16)
    index.add(corpus)
    result = index.search(corpus[42], k=1)
    assert result.ids[0] == 42
    assert result.scores[0] == pytest.approx(1.0, abs=1e-5)


def test_brute_force_scores_sorted(corpus):
    index = BruteForceIndex(16)
    index.add(corpus)
    result = index.search(corpus[0], k=10)
    assert list(result.scores) == sorted(result.scores, reverse=True)
    assert len(result) == 10


def test_brute_force_k_larger_than_corpus(corpus):
    index = BruteForceIndex(16)
    index.add(corpus[:5])
    assert len(index.search(corpus[0], k=50)) == 5


def test_explicit_ids(corpus):
    index = BruteForceIndex(16)
    index.add(corpus[:3], ids=np.array([100, 200, 300]))
    result = index.search(corpus[1], k=1)
    assert result.ids[0] == 200


def test_mismatched_ids_rejected(corpus):
    index = BruteForceIndex(16)
    with pytest.raises(ConfigurationError):
        index.add(corpus[:3], ids=np.array([1, 2]))


def test_empty_index_search_rejected():
    with pytest.raises(ConfigurationError):
        BruteForceIndex(8).search(np.zeros(8), k=1)


def test_dim_mismatch_rejected(corpus):
    index = BruteForceIndex(16)
    with pytest.raises(ConfigurationError):
        index.add(np.zeros((2, 8)))


def test_ivf_requires_training(corpus):
    index = IVFIndex(16, n_cells=4)
    with pytest.raises(ConfigurationError):
        index.add(corpus)


def test_ivf_recall_against_brute_force(corpus):
    brute = BruteForceIndex(16)
    brute.add(corpus)
    ivf = IVFIndex(16, n_cells=8, nprobe=8, seed=1)  # full probe = exact
    ivf.train(corpus)
    ivf.add(corpus)
    query = corpus[7]
    exact = set(brute.search(query, k=5).ids)
    approx = set(ivf.search(query, k=5).ids)
    assert exact == approx


def test_ivf_partial_probe_has_reasonable_recall(corpus):
    brute = BruteForceIndex(16)
    brute.add(corpus)
    ivf = IVFIndex(16, n_cells=8, nprobe=3, seed=1)
    ivf.train(corpus)
    ivf.add(corpus)
    hits = 0
    for i in range(0, 100, 10):
        exact = set(brute.search(corpus[i], k=5).ids)
        approx = set(ivf.search(corpus[i], k=5).ids)
        hits += len(exact & approx)
    assert hits >= 30  # >=60% recall on self-queries


def test_ivf_size_tracking(corpus):
    ivf = IVFIndex(16, n_cells=4, seed=0)
    ivf.train(corpus)
    ivf.add(corpus[:100])
    ivf.add(corpus[100:150])
    assert len(ivf) == 150


def test_ivf_validation(corpus):
    with pytest.raises(ConfigurationError):
        IVFIndex(16, n_cells=4, nprobe=5)
    with pytest.raises(ConfigurationError):
        IVFIndex(0)
    ivf = IVFIndex(16, n_cells=64)
    with pytest.raises(ConfigurationError):
        ivf.train(corpus[:10])  # fewer vectors than cells
