"""Custom AST lint: repo-specific rules the generic linters can't express.

``lint_path`` tests build throwaway package trees shaped like ``src/repro``
(a ``sim/`` subdirectory marks simulation modules), with one deliberately
bad module each — the wall-clock-in-sim fixture the acceptance criteria
require lives here.
"""

from pathlib import Path

from repro.check import check_source, lint_path, lint_source


def _rule_ids(findings):
    return {f.rule_id for f in findings}


def _package(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "repro"
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


# ----------------------------------------------------------------------
# The real package is clean
# ----------------------------------------------------------------------
def test_repo_source_is_clean():
    root = Path(__file__).resolve().parents[2] / "src" / "repro"
    report = check_source(root)
    assert report.findings == []
    assert any(path.endswith("core.py") for path in report.checked)


# ----------------------------------------------------------------------
# C001: wall clock in simulation modules
# ----------------------------------------------------------------------
def test_wall_clock_in_sim_module_flagged_c001(tmp_path):
    root = _package(tmp_path, {"sim/core.py": (
        "import time\n"
        "def step():\n"
        "    return time.perf_counter()\n"
    )})
    findings, checked = lint_path(root)
    assert _rule_ids(findings) == {"C001"}
    assert "time.perf_counter" in findings[0].message
    assert len(checked) == 1


def test_aliased_and_from_imports_flagged_c001(tmp_path):
    root = _package(tmp_path, {"engine/executor.py": (
        "import time as clock\n"
        "from time import monotonic as mono\n"
        "def run():\n"
        "    return clock.time_ns() + mono()\n"
    )})
    findings, _ = lint_path(root)
    assert [f.rule_id for f in findings] == ["C001", "C001"]


def test_datetime_now_flagged_c001(tmp_path):
    root = _package(tmp_path, {"sim/clock.py": (
        "import datetime\n"
        "def stamp():\n"
        "    return datetime.datetime.now()\n"
    )})
    findings, _ = lint_path(root)
    assert _rule_ids(findings) == {"C001"}


def test_wall_clock_outside_sim_modules_allowed(tmp_path):
    root = _package(tmp_path, {"retrieval/fetch.py": (
        "import time\n"
        "def fetch():\n"
        "    return time.time()\n"
    )})
    findings, _ = lint_path(root)
    assert findings == []


# ----------------------------------------------------------------------
# C002: float equality on simulated timestamps
# ----------------------------------------------------------------------
def test_timestamp_equality_flagged_c002(tmp_path):
    root = _package(tmp_path, {"skip/metrics.py": (
        "def same(kernel, call):\n"
        "    return kernel.ts == call.ts_end\n"
    )})
    findings, _ = lint_path(root)
    assert _rule_ids(findings) == {"C002"}


def test_ns_suffix_names_flagged_c002():
    findings = lint_source(
        "def check(a, latency_ns):\n"
        "    return latency_ns != a\n",
        "inline.py")
    assert _rule_ids(findings) == {"C002"}


def test_ordering_comparisons_allowed():
    findings = lint_source(
        "def before(a, b):\n"
        "    return a.ts < b.ts <= b.ts_end\n",
        "inline.py")
    assert findings == []


def test_non_timestamp_equality_allowed():
    findings = lint_source("def eq(a, b):\n    return a.count == b.count\n",
                           "inline.py")
    assert findings == []


# ----------------------------------------------------------------------
# C003 / C004: process protocol
# ----------------------------------------------------------------------
def test_unknown_yield_verb_flagged_c003(tmp_path):
    root = _package(tmp_path, {"sim/procs.py": (
        "def bad_process(core):\n"
        "    yield ('sleep', 10.0)\n"
    )})
    findings, _ = lint_path(root)
    assert _rule_ids(findings) == {"C003"}
    assert "'sleep'" in findings[0].message


def test_bare_yield_flagged_c003(tmp_path):
    root = _package(tmp_path, {"sim/procs.py": (
        "def idle_process(core):\n"
        "    yield\n"
    )})
    findings, _ = lint_path(root)
    assert _rule_ids(findings) == {"C003"}


def test_yieldless_process_flagged_c004(tmp_path):
    root = _package(tmp_path, {"engine/procs.py": (
        "def dispatch_process(core):\n"
        "    return 42\n"
    )})
    findings, _ = lint_path(root)
    assert _rule_ids(findings) == {"C004"}


def test_well_formed_process_is_clean(tmp_path):
    root = _package(tmp_path, {"sim/procs.py": (
        "def tick_process(core):\n"
        "    yield ('at', 10.0)\n"
        "    yield ('join', 'barrier', 20.0)\n"
        "    request = ('at', 30.0)\n"
        "    yield request\n"
        "    yield from tick_process(core)\n"
    )})
    findings, _ = lint_path(root)
    assert findings == []


def test_process_rules_ignored_outside_sim_modules(tmp_path):
    root = _package(tmp_path, {"retrieval/text.py": (
        "def tokenize_process(text):\n"
        "    return text.split()\n"
    )})
    findings, _ = lint_path(root)
    assert findings == []


def test_syntax_error_reported_not_raised(tmp_path):
    root = _package(tmp_path, {"sim/broken.py": "def oops(:\n"})
    findings, _ = lint_path(root)
    assert len(findings) == 1
    assert "does not parse" in findings[0].message
