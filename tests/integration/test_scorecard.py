"""Reproduction scorecard."""

import pytest

from repro.reproduction import Anchor, run_scorecard


@pytest.fixture(scope="module")
def scorecard():
    return run_scorecard()


def test_all_anchors_pass(scorecard):
    assert scorecard.failures() == []
    assert scorecard.passed == scorecard.total


def test_scorecard_covers_every_experiment(scorecard):
    experiments = {a.experiment for a in scorecard.anchors}
    assert {"Table V", "Table I", "Fig. 6", "Fig. 8", "Fig. 10a",
            "Fig. 11a"} <= experiments
    assert scorecard.total >= 18


def test_render_contains_verdicts(scorecard):
    text = scorecard.render()
    assert "ok" in text
    assert f"{scorecard.passed}/{scorecard.total}" in text


def test_anchor_verdict_logic():
    good = Anchor("x", "d", 2.0, 2.1, tolerance=0.1)
    bad = Anchor("x", "d", 2.0, 2.5, tolerance=0.1)
    exact = Anchor("x", "d", 8.0, 8.0, tolerance=0.0)
    assert good.passed and not bad.passed and exact.passed
    assert bad.deviation == pytest.approx(0.25)


def test_zero_paper_value_edge():
    assert Anchor("x", "d", 0.0, 0.0, 0.1).passed
    assert not Anchor("x", "d", 0.0, 1.0, 0.1).passed
    assert Anchor("x", "d", 0.0, 0.0, 0.1).deviation == 0.0


def test_progress_callback_invoked():
    messages = []
    run_scorecard(progress=messages.append)
    assert any("Table V" in m for m in messages)
