"""Fig. 8 — idealized speedup from pure launch savings vs chain length,
GPT-2 and XLM-RoBERTa prefill on Intel+H100.

Paper: modest (1.05x-1.09x) at short chains, up to 2.7x (GPT-2) and 6.8x
(XLM-R) at L=256.
"""

import pytest

from _harness import BENCH_ENGINE, report, run_once
from repro.engine import run
from repro.hardware import INTEL_H100
from repro.skip import analyze_trace
from repro.viz import render_series
from repro.workloads import GPT2, XLM_ROBERTA_BASE

LENGTHS = (2, 4, 8, 16, 32, 64, 128, 256)
PAPER_MAX = {"gpt2": 2.7, "xlm-roberta-base": 6.8}


def _speedups(model):
    result = run(model, INTEL_H100, batch_size=1, seq_len=512,
                 config=BENCH_ENGINE)
    analyses = analyze_trace(result.trace, lengths=LENGTHS)
    return {a.length: a.ideal_speedup for a in analyses}


def _check(model, speedups):
    series = [speedups[length] for length in LENGTHS]
    report(render_series(
        f"Fig. 8 {model.name} ideal speedup (paper max {PAPER_MAX[model.name]}x)",
        LENGTHS, series, y_format="{:.2f}x"))
    assert 1.0 < speedups[2] < 1.15          # short chains are modest
    assert max(series) == speedups[256]       # best at the longest chain
    assert speedups[256] == pytest.approx(PAPER_MAX[model.name], rel=0.15)


def test_fig8_gpt2_ideal_speedup(benchmark):
    _check(GPT2, run_once(benchmark, _speedups, GPT2))


def test_fig8_xlmr_ideal_speedup(benchmark):
    _check(XLM_ROBERTA_BASE, run_once(benchmark, _speedups, XLM_ROBERTA_BASE))
