"""SLO-aware batch/platform advisor."""

import pytest

from repro.analysis import advise
from repro.errors import AnalysisError
from repro.units import ms_to_ns


def test_slo_points_are_compliant(bert_sweep):
    report = advise(bert_sweep, seq_len=512, slo_ms=50.0)
    for point in report.points:
        if point.meets_slo:
            assert point.ttft_ns <= ms_to_ns(50.0)
            assert point.tokens_per_second > 0


def test_largest_compliant_batch_chosen(bert_sweep):
    report = advise(bert_sweep, seq_len=512, slo_ms=50.0)
    by_name = {p.platform: p for p in report.points}
    for name, point in by_name.items():
        if not point.meets_slo:
            continue
        # The next swept batch (if any) must violate the SLO.
        batches = bert_sweep.batch_sizes
        index = batches.index(point.batch_size)
        if index + 1 < len(batches):
            next_ttft = bert_sweep.point(name, batches[index + 1]).ttft_ns
            assert next_ttft > ms_to_ns(50.0)


def test_tight_slo_favors_lc_loose_favors_cc(bert_sweep):
    """The paper's trade-off: at tight latency budgets the LC system's fast
    CPU wins; with a generous budget the CC system's throughput wins."""
    tight = advise(bert_sweep, seq_len=512, slo_ms=6.0)
    generous = advise(bert_sweep, seq_len=512, slo_ms=300.0)
    assert tight.best().platform == "Intel+H100"
    assert generous.best().platform == "GH200"


def test_impossible_slo(bert_sweep):
    report = advise(bert_sweep, seq_len=512, slo_ms=0.001)
    assert all(not p.meets_slo for p in report.points)
    with pytest.raises(AnalysisError):
        report.best()


def test_platform_filter(bert_sweep):
    report = advise(bert_sweep, seq_len=512, slo_ms=100.0,
                    platforms=["GH200"])
    assert [p.platform for p in report.points] == ["GH200"]


def test_validation(bert_sweep):
    with pytest.raises(AnalysisError):
        advise(bert_sweep, seq_len=512, slo_ms=0)
    with pytest.raises(AnalysisError):
        advise(bert_sweep, seq_len=0)
