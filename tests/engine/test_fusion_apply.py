"""Fusion-plan application to kernel streams."""

import pytest

from repro.engine import FusionPlan, apply_fusion_plan, launches_saved
from repro.engine.lowering import KernelTask
from repro.errors import AnalysisError


def kernels(*names: str) -> list[KernelTask]:
    return [KernelTask(name=n, flops=1.0, bytes_read=2.0, bytes_written=3.0)
            for n in names]


def test_simple_chain_replacement():
    stream = kernels("a", "b", "c", "d")
    plan = FusionPlan(chains=(("b", "c"),))
    out = apply_fusion_plan(stream, plan)
    assert [k.name for k in out][0] == "a"
    assert out[1].name.startswith("fused_chain_L2")
    assert out[2].name == "d"


def test_fused_kernel_sums_work():
    stream = kernels("a", "b")
    out = apply_fusion_plan(stream, FusionPlan(chains=(("a", "b"),)))
    assert len(out) == 1
    assert out[0].flops == 2.0
    assert out[0].bytes_read == 4.0
    assert out[0].bytes_written == 6.0


def test_repeated_instances_all_fused():
    stream = kernels("a", "b", "a", "b", "a", "b")
    out = apply_fusion_plan(stream, FusionPlan(chains=(("a", "b"),)))
    assert len(out) == 3
    assert all(k.name.startswith("fused_chain") for k in out)


def test_longest_chain_wins():
    stream = kernels("a", "b", "c")
    plan = FusionPlan(chains=(("a", "b"), ("a", "b", "c")))
    out = apply_fusion_plan(stream, plan)
    assert len(out) == 1
    assert out[0].name.startswith("fused_chain_L3")


def test_overlapping_instances_do_not_double_fuse():
    stream = kernels("a", "a", "a")
    out = apply_fusion_plan(stream, FusionPlan(chains=(("a", "a"),)))
    # greedy: (a,a) fused, trailing 'a' left alone
    assert len(out) == 2
    assert out[1].name == "a"


def test_no_match_passes_through():
    stream = kernels("x", "y")
    out = apply_fusion_plan(stream, FusionPlan(chains=(("a", "b"),)))
    assert [k.name for k in out] == ["x", "y"]


def test_launches_saved():
    stream = kernels("a", "b", "a", "b")
    assert launches_saved(stream, FusionPlan(chains=(("a", "b"),))) == 2


def test_chain_length_one_rejected():
    with pytest.raises(AnalysisError):
        FusionPlan(chains=(("a",),))


def test_plan_max_length():
    plan = FusionPlan(chains=(("a", "b"), ("a", "b", "c", "d")))
    assert plan.max_length == 4
    assert FusionPlan(chains=()).max_length == 0
