"""Shared seeded serving scenarios used across test suites and benchmarks.

Two canonical arrival streams recur everywhere the serving stack is
exercised:

* the **overload** stream — ~100 requests in 200 ms, far past what one
  replica with 8 active sequences drains at line rate, so scale-out tests
  have head-of-line pressure to relieve;
* the **KV-pressure** stream — settings that put GPT-2 under measurable
  paged-pool pressure in ~0.1 s of wall time (capacity 72 blocks at
  ``POOL_GIB``; two admitted sequences need 2*33=66 blocks at admission but
  2*40=80 over their lifetimes, so decode growth must evict or swap);
* the **mixed long-prompt** stream — a high-rate interactive stream
  sharing the engine with sparse 3072-token analytic prompts
  (:func:`repro.analysis.pareto.mixed_prompt_requests` at seed 3), the
  traffic where whole-prompt prefill stalls decode tails hardest and the
  chunked-prefill benchmarks measure their win;
* the **cluster** stream — a bursty tagged MMPP stream (seed 7) with
  sessions, tenants, and a 50% shared-prefix share, routed least-loaded
  across 4 replicas with copy-on-write prefix caching. The same
  configuration is the ``cluster`` canonical scenario ``repro check hb``
  certifies (:data:`repro.check.hb.CANONICAL_SCENARIOS`), so determinism
  tests and the certifier replay the identical run.

Keeping the numbers here — instead of re-typed per suite — means a change
to one scenario shifts every consumer together, and parity suites comparing
two code paths are guaranteed to replay the *same* stream.
"""

from repro.engine.modes import ExecutionMode
from repro.kvcache import KvCacheConfig
from repro.serving.continuous import ContinuousBatchPolicy
from repro.serving.latency import LatencyModel
from repro.serving.requests import poisson_requests
from repro.serving.runtime import simulate_serving
from repro.workloads import GPT2

#: The overload stream's parameters (see module docstring).
OVERLOAD = dict(rate_per_s=500, duration_s=0.2, prompt_len=512,
                output_tokens=64, seed=3)

#: The KV-pressure stream's parameters (see module docstring).
PRESSURE = dict(rate_per_s=40.0, duration_s=0.3, prompt_len=512,
                output_tokens=128, seed=7)
#: Paged-pool size that makes the PRESSURE stream actually evict/swap.
POOL_GIB = 0.04
#: Continuous-batching concurrency bound used with both streams.
MAX_ACTIVE = 8


def overloaded_stream():
    """The canonical overload arrival stream (deterministic: seed 3)."""
    return poisson_requests(**OVERLOAD)


def pressure_stream():
    """The canonical KV-pressure arrival stream (deterministic: seed 7)."""
    return poisson_requests(**PRESSURE)


#: Seed of the canonical mixed long-prompt stream (the chunked-prefill
#: benchmarks and their locking tests must replay the same arrivals).
MIXED_SEED = 3
#: Chunk budget the chunked scenarios run at (the measured sweet spot on
#: both GH200 and AMD+A100 — see ``tests/analysis/test_pareto.py``).
CHUNK_TOKENS = 256


def mixed_stream(seed=MIXED_SEED):
    """The canonical mixed long-prompt arrival stream (deterministic)."""
    from repro.analysis.pareto import mixed_prompt_requests

    return mixed_prompt_requests(seed=seed)


def chunked_run(platform, chunk_tokens=CHUNK_TOKENS, pp=None, recorder=None):
    """Serve the mixed stream with chunked prefill on ``platform``.

    Returns ``(requests, run)``. ``chunk_tokens=0`` serves the identical
    stream whole-prompt (the parity/benchmark baseline); ``pp`` optionally
    prices engine steps on a pipeline-parallel engine.
    """
    requests = mixed_stream()
    latency = LatencyModel(platform=platform, pp=pp)
    return requests, simulate_serving(
        requests, GPT2, latency,
        policy=ContinuousBatchPolicy(max_active=MAX_ACTIVE,
                                     chunk_tokens=chunk_tokens),
        recorder=recorder)


def tiebreak_pair(run):
    """Run ``run(queue)`` under the FIFO and the adversarial tie-break.

    ``run`` is called twice — once with a production :class:`EventQueue`
    (FIFO at equal timestamps) and once with a
    :class:`~repro.sim.queue.PerturbedEventQueue` (LIFO at equal
    timestamps, causally equivalent) — and both results are returned as
    ``(baseline, perturbed)``. Parity suites and the perf harness assert
    the two are equal: any divergence means an outcome depended on
    event-queue pop order rather than on simulated causality (the same
    adversarial perturbation ``repro check hb --certify`` uses).
    """
    from repro.sim.queue import EventQueue, PerturbedEventQueue

    return run(EventQueue()), run(PerturbedEventQueue())


#: The cluster stream's traffic parameters (see module docstring). These
#: mirror the ``cluster`` scenario in ``repro.check.hb`` — change them
#: together.
CLUSTER_ARRIVALS = dict(rate_per_s=400.0, duration_s=0.05, seed=7)
CLUSTER_LENGTHS = dict(prompt_len=256, prompt_jitter=64, output_tokens=24,
                       output_jitter=8)
CLUSTER_PREFIX = dict(share=0.5, prefix_len=128, pool=2)
CLUSTER_SESSIONS = 6
CLUSTER_TENANTS = 2
CLUSTER_REPLICAS = 4


def cluster_stream():
    """The canonical cluster traffic stream (deterministic: seed 7)."""
    from repro.traffic import (ArrivalFamily, ArrivalSpec, PrefixSpec,
                               TrafficConfig, generate_traffic)

    return generate_traffic(TrafficConfig(
        arrivals=ArrivalSpec(family=ArrivalFamily.BURSTY, **CLUSTER_ARRIVALS),
        prefix=PrefixSpec(**CLUSTER_PREFIX),
        sessions=CLUSTER_SESSIONS, tenants=CLUSTER_TENANTS,
        **CLUSTER_LENGTHS))


def cluster_run(platform, router="least-loaded", replicas=CLUSTER_REPLICAS,
                recorder=None, queue=None, causality=None):
    """Serve the cluster stream routed across ``replicas`` on ``platform``.

    Returns ``(requests, run)``. Prefix caching is on (policy NONE, so the
    paged-pressure machinery stays out of the way); ``router`` accepts a
    policy name or a :class:`~repro.serving.cluster.RouterPolicy`.
    """
    from repro.kvcache import KvCacheConfig, KvPolicy
    from repro.serving.cluster import simulate_cluster

    requests = cluster_stream()
    latency = LatencyModel(platform=platform)
    return requests, simulate_cluster(
        requests, GPT2, latency,
        policy=ContinuousBatchPolicy(max_active=MAX_ACTIVE),
        router=router, replicas=replicas, recorder=recorder,
        kv=KvCacheConfig(policy=KvPolicy.NONE, prefix_caching=True),
        queue=queue, causality=causality)


def pressured_run(platform, policy,
                  mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD,
                  recorder=None):
    """Serve the PRESSURE stream on ``platform`` under KV policy ``policy``.

    Returns ``(requests, run)`` so callers can assert every request was
    served. Single replica, continuous batching at ``MAX_ACTIVE``.
    """
    requests = pressure_stream()
    latency = LatencyModel(platform=platform, mode=mode)
    return requests, simulate_serving(
        requests, GPT2, latency,
        policy=ContinuousBatchPolicy(max_active=MAX_ACTIVE),
        recorder=recorder,
        kv=KvCacheConfig(policy=policy, pool_gib=POOL_GIB))
