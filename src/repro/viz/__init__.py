"""Text rendering helpers for benchmark output and trace inspection."""

from repro.viz.tables import render_series, render_table, sparkline
from repro.viz.timeline import TimelineOptions, render_timeline
from repro.viz.serving import render_serving_timeline

__all__ = [
    "TimelineOptions",
    "render_series",
    "render_serving_timeline",
    "render_table",
    "render_timeline",
    "sparkline",
]
