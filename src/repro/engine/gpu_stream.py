"""In-order GPU stream simulation.

A CUDA stream executes kernels strictly in submission order. A kernel starts
at ``max(arrival, previous kernel's end)`` — the difference between its start
and its launch-call begin is exactly the paper's per-kernel launch-and-queuing
time ``t_l`` (Eq. 1).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class GpuStream:
    """One in-order CUDA stream.

    Attributes:
        stream_id: CUDA stream number reported in traces.
        free_at: Time the stream finishes its last submitted kernel.
        busy_ns: Accumulated kernel execution time.
        kernel_count: Number of kernels submitted.
        start_times: Start time of every submitted kernel, in order (used by
            the executor to model the bounded launch queue).
    """

    stream_id: int = 7
    free_at: float = 0.0
    busy_ns: float = 0.0
    kernel_count: int = 0
    start_times: list[float] = field(default_factory=list)

    def submit(self, arrival_ns: float, duration_ns: float,
               gap_ns: float = 0.0) -> tuple[float, float]:
        """Submit a kernel; returns (start, end) timestamps.

        Args:
            arrival_ns: When the kernel reaches the GPU front-end (launch-call
                begin + launch latency).
            duration_ns: Execution duration.
            gap_ns: Stream front-end gap between back-to-back kernels
                (individually launched kernels pay a small teardown/setup
                cost that CUDA-graph replay avoids).
        """
        if duration_ns < 0:
            raise SimulationError("kernel duration must be non-negative")
        if arrival_ns < 0:
            raise SimulationError("kernel arrival must be non-negative")
        if gap_ns < 0:
            raise SimulationError("gap must be non-negative")
        back_to_back = self.kernel_count > 0
        start = max(arrival_ns, self.free_at + (gap_ns if back_to_back else 0.0))
        end = start + duration_ns
        self.free_at = end
        self.busy_ns += duration_ns
        self.kernel_count += 1
        self.start_times.append(start)
        return start, end

    def started_before(self, ts: float) -> int:
        """Number of submitted kernels that have started by ``ts``.

        ``start_times`` is non-decreasing for an in-order stream, so a binary
        search would do; the executor only calls this through
        :meth:`pending_at`, which indexes directly instead.
        """
        count = 0
        for start in self.start_times:
            if start <= ts:
                count += 1
            else:
                break
        return count

    def pending_at(self, ts: float) -> int:
        """Submitted kernels that have not yet started executing at ``ts``.

        This is the launch-queue occupancy the observability layer samples:
        ``start_times`` is non-decreasing on an in-order stream, so a binary
        search keeps the sample O(log n).
        """
        return self.kernel_count - bisect_right(self.start_times, ts)

    def nth_start(self, index: int) -> float:
        """Start time of the ``index``-th submitted kernel (0-based)."""
        try:
            return self.start_times[index]
        except IndexError:
            raise SimulationError(f"no kernel {index} submitted yet") from None
