"""SLO-aware batch/platform advisor.

Section II-A: system-level objectives constrain latency to ~200 ms for a
good user experience, while larger batches buy throughput. The advisor
finds, per platform, the largest batch whose TTFT stays within the SLO, and
ranks platforms by the throughput they achieve inside it — the paper's
"operate in the balanced region" recommendation made actionable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.analysis.sweep import SweepResult
from repro.errors import AnalysisError
from repro.units import ms_to_ns

if TYPE_CHECKING:
    from repro.serving.batcher import ServingReport

#: The paper's quoted interactive-serving latency budget.
DEFAULT_SLO_MS = 200.0


@dataclass(frozen=True)
class SloPoint:
    """Best SLO-compliant operating point for one platform."""

    platform: str
    batch_size: int | None        # None when even BS=1 misses the SLO
    ttft_ns: float | None
    tokens_per_second: float      # prefill tokens/s at the chosen batch

    @property
    def meets_slo(self) -> bool:
        return self.batch_size is not None


@dataclass(frozen=True)
class SloReport:
    """SLO analysis across platforms for one sweep."""

    slo_ns: float
    seq_len: int
    points: tuple[SloPoint, ...]

    def best(self) -> SloPoint:
        """The platform with the highest SLO-compliant throughput."""
        compliant = [p for p in self.points if p.meets_slo]
        if not compliant:
            raise AnalysisError("no platform meets the SLO at any swept batch")
        return max(compliant, key=lambda p: p.tokens_per_second)


def advise(sweep: SweepResult, seq_len: int,
           slo_ms: float = DEFAULT_SLO_MS,
           platforms: Sequence[str] | None = None) -> SloReport:
    """Pick the largest SLO-compliant batch per platform from a sweep.

    Args:
        sweep: A completed prefill batch sweep.
        seq_len: Sequence length the sweep used (for token accounting).
        slo_ms: TTFT budget in milliseconds.
        platforms: Platforms to rank (default: all in the sweep).
    """
    if slo_ms <= 0:
        raise AnalysisError("slo_ms must be positive")
    if seq_len <= 0:
        raise AnalysisError("seq_len must be positive")
    slo_ns = ms_to_ns(slo_ms)
    names = list(platforms) if platforms is not None else sweep.platforms()
    points = []
    for name in names:
        best_batch = None
        best_ttft = None
        for batch in sweep.batch_sizes:
            ttft = sweep.point(name, batch).ttft_ns
            if ttft <= slo_ns:
                best_batch, best_ttft = batch, ttft
        if best_batch is None:
            points.append(SloPoint(name, None, None, 0.0))
        else:
            throughput = best_batch * seq_len / (best_ttft / 1e9)
            points.append(SloPoint(name, best_batch, best_ttft, throughput))
    return SloReport(slo_ns=slo_ns, seq_len=seq_len, points=tuple(points))


@dataclass(frozen=True)
class ReplicaAttainment:
    """SLO attainment of the requests one replica served."""

    replica: int
    requests: int
    within_slo: int

    @property
    def attainment(self) -> float:
        return self.within_slo / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class ServingSloAttainment:
    """Fraction of served requests whose TTFT met the latency budget."""

    slo_ns: float
    requests: int
    within_slo: int
    replicas: tuple[ReplicaAttainment, ...]

    @property
    def attainment(self) -> float:
        return self.within_slo / self.requests if self.requests else 0.0

    def render(self) -> str:
        line = (f"SLO attainment     : {self.attainment:.1%} "
                f"({self.within_slo}/{self.requests} TTFT within "
                f"{self.slo_ns / 1e6:.0f} ms)")
        if len(self.replicas) <= 1:
            return line
        per_replica = "  ".join(f"r{r.replica} {r.attainment:.0%}"
                                for r in self.replicas)
        return f"{line}\n  per replica      : {per_replica}"


def serving_slo_attainment(report: ServingReport,
                           slo_ms: float = DEFAULT_SLO_MS,
                           ) -> ServingSloAttainment:
    """Measure a serving run against the paper's interactive TTFT budget.

    Works on any :class:`~repro.serving.batcher.ServingReport`; outcomes
    from multi-replica runs (``RequestOutcome.replica``) get a per-replica
    breakdown so a lagging replica is visible, not averaged away.
    """
    if slo_ms <= 0:
        raise AnalysisError("slo_ms must be positive")
    slo_ns = ms_to_ns(slo_ms)
    by_replica: dict[int, list[bool]] = {}
    for outcome in report.outcomes:
        by_replica.setdefault(outcome.replica, []).append(
            outcome.ttft_ns <= slo_ns)
    replicas = tuple(
        ReplicaAttainment(replica=replica, requests=len(hits),
                          within_slo=sum(hits))
        for replica, hits in sorted(by_replica.items()))
    return ServingSloAttainment(
        slo_ns=slo_ns,
        requests=sum(r.requests for r in replicas),
        within_slo=sum(r.within_slo for r in replicas),
        replicas=replicas,
    )
