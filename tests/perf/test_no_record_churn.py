"""Allocation-churn regression locks for unrecorded runs.

The churn audit found two classes of waste on runs nobody observes:

* serving policies built :class:`~repro.obs.events.EngineShape` objects for
  every step even with ``recorder=None``, where they were dropped unread;
* metrics-only engine runs built a full :class:`~repro.trace.trace.Trace`
  (every event drawing a global event id) when only the aggregate numbers
  were wanted — the tape fast path records plain tuples instead.

These tests pin both behaviors: a no-record serving run must construct
zero ``EngineShape`` objects, and a tape-mode engine run must draw zero
global trace event ids. The global id counter in ``repro.trace.events`` is
the allocation probe: every trace event constructed anywhere in the
process advances it exactly once.
"""

from repro.engine.executor import run
from repro.hardware import get_platform
from repro.kvcache import KvPolicy
from repro.serving import (
    ContinuousBatchPolicy,
    LatencyModel,
    poisson_requests,
    simulate_serving,
)
from repro.trace import events as trace_events
from repro.workloads import get_model

INTEL_H100 = get_platform("Intel+H100")
GPT2 = get_model("gpt2")


def _event_ids_drawn(fn) -> int:
    """Global trace-event ids drawn while ``fn`` runs (probe draws excluded)."""
    before = next(trace_events._event_ids)
    fn()
    after = next(trace_events._event_ids)
    return after - before - 1


def test_unrecorded_serving_run_allocates_no_trace_events():
    requests = poisson_requests(rate_per_s=60, duration_s=0.1, prompt_len=64,
                                output_tokens=4, seed=5)
    drawn = _event_ids_drawn(lambda: simulate_serving(
        requests, GPT2, LatencyModel(INTEL_H100),
        policy=ContinuousBatchPolicy(max_active=4)))
    assert drawn == 0


def test_tape_mode_engine_run_allocates_no_trace_events():
    drawn = _event_ids_drawn(lambda: run(
        GPT2, INTEL_H100, batch_size=2, seq_len=128, tape=True))
    assert drawn == 0


def test_unrecorded_policies_build_no_engine_shapes(monkeypatch):
    from repro.obs import events as obs_events

    built = []
    real_shape = obs_events.EngineShape

    def counting_shape(*args, **kwargs):
        built.append(args)
        return real_shape(*args, **kwargs)

    # Policies import the symbol into their own namespaces; patch each one.
    for module in ("repro.serving.continuous", "repro.serving.batcher",
                   "repro.serving.scheduler", "repro.serving.speculative",
                   "repro.serving.pipeline", "repro.serving.rag",
                   "repro.kvcache.serving"):
        monkeypatch.setattr(f"{module}.EngineShape", counting_shape)

    from repro.kvcache import KvCacheConfig

    requests = poisson_requests(rate_per_s=40, duration_s=0.1, prompt_len=512,
                                output_tokens=32, seed=7)
    simulate_serving(requests, GPT2, LatencyModel(INTEL_H100),
                     policy=ContinuousBatchPolicy(max_active=4))
    simulate_serving(requests, GPT2,
                     LatencyModel(get_platform("GH200")),
                     policy=ContinuousBatchPolicy(max_active=4),
                     kv=KvCacheConfig(policy=KvPolicy.OFFLOAD, pool_gib=0.04))
    assert built == []
