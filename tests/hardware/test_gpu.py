"""GPU roofline model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.gpu import GpuSpec


def make_gpu(**overrides) -> GpuSpec:
    params = dict(name="test-gpu", fp16_tflops=100.0, sustain=1.0,
                  hbm_bandwidth_gbs=1000.0, bandwidth_sustain=1.0,
                  min_kernel_ns=1000.0, ramp_flops=1e9, ramp_bytes=1e6)
    params.update(overrides)
    return GpuSpec(**params)


def test_tiny_kernel_duration_is_ramp_offset():
    # The saturating-efficiency model reduces to (flops + ramp) / peak_rate,
    # so a near-zero-flop kernel costs ramp/peak (the launch ramp-up), not
    # the floor.
    gpu = make_gpu()
    expected_ns = (1.0 + gpu.ramp_flops) / (100e12) * 1e9
    assert gpu.kernel_duration_ns(flops=1.0, bytes_moved=1.0) == pytest.approx(
        expected_ns)


def test_null_kernel_duration_is_floor():
    gpu = make_gpu(min_kernel_ns=1440.0)
    assert gpu.kernel_duration_ns(0.0, 0.0) == 1440.0


def test_compute_bound_kernel():
    gpu = make_gpu()
    flops = 1e12  # efficiency ~ 1/(1+1e-3) ~ 1.0
    expected = flops / (100e12 * gpu.compute_efficiency(flops)) * 1e9
    assert gpu.kernel_duration_ns(flops, 0.0) == pytest.approx(expected)


def test_memory_bound_kernel():
    gpu = make_gpu()
    nbytes = 1e9
    duration = gpu.kernel_duration_ns(0.0, nbytes)
    # ~1 GB at ~1 TB/s => ~1 ms
    assert duration == pytest.approx(1e6 / gpu.bandwidth_efficiency(nbytes),
                                     rel=1e-6)


def test_roofline_takes_max_of_terms():
    gpu = make_gpu()
    compute_only = gpu.kernel_duration_ns(1e12, 0.0)
    memory_only = gpu.kernel_duration_ns(0.0, 1e9)
    both = gpu.kernel_duration_ns(1e12, 1e9)
    assert both == pytest.approx(max(compute_only, memory_only))


def test_efficiency_ramps_with_size():
    gpu = make_gpu()
    assert gpu.compute_efficiency(1e9) == pytest.approx(0.5)
    assert gpu.compute_efficiency(9e9) == pytest.approx(0.9)
    assert gpu.bandwidth_efficiency(1e6) == pytest.approx(0.5)


def test_efficiency_zero_for_no_work():
    gpu = make_gpu()
    assert gpu.compute_efficiency(0.0) == 0.0
    assert gpu.bandwidth_efficiency(0.0) == 0.0


def test_duration_monotonic_in_flops():
    gpu = make_gpu()
    values = [gpu.kernel_duration_ns(f, 0.0) for f in (1e9, 1e10, 1e11, 1e12)]
    assert values == sorted(values)


def test_sustain_scales_throughput():
    fast = make_gpu(sustain=1.0)
    slow = make_gpu(sustain=0.5)
    flops = 1e13
    assert slow.kernel_duration_ns(flops, 0) == pytest.approx(
        2 * fast.kernel_duration_ns(flops, 0))


def test_floor_scale_reduces_floor():
    gpu = make_gpu()
    assert gpu.kernel_duration_ns(0, 0, floor_scale=0.5) == 500.0


def test_floor_scale_must_be_positive():
    with pytest.raises(ConfigurationError):
        make_gpu().kernel_duration_ns(0, 0, floor_scale=0.0)


def test_negative_work_rejected():
    with pytest.raises(ConfigurationError):
        make_gpu().kernel_duration_ns(-1.0, 0.0)


@pytest.mark.parametrize("field,value", [
    ("fp16_tflops", 0.0),
    ("hbm_bandwidth_gbs", -1.0),
    ("sustain", 0.0),
    ("sustain", 1.5),
    ("bandwidth_sustain", 0.0),
    ("min_kernel_ns", 0.0),
])
def test_invalid_specs_rejected(field, value):
    with pytest.raises(ConfigurationError):
        make_gpu(**{field: value})
