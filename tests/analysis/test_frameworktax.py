"""Framework-tax baseline classifier (Fernandez et al. [14])."""

import pytest

from repro.analysis import LatencyBound, classify_latency_curve
from repro.errors import AnalysisError


def test_flat_then_scaling_curve():
    result = classify_latency_curve([1, 2, 4, 8], [10.0, 10.5, 11.0, 20.0])
    assert result.transition_batch_size == 8
    assert result.bound_at(1) is LatencyBound.FRAMEWORK_BOUND
    assert result.bound_at(4) is LatencyBound.FRAMEWORK_BOUND
    assert result.bound_at(8) is LatencyBound.COMPUTE_BOUND


def test_always_flat_curve():
    result = classify_latency_curve([1, 2, 4], [10.0, 10.0, 10.1])
    assert result.transition_batch_size is None
    assert result.bound_at(4) is LatencyBound.FRAMEWORK_BOUND


def test_always_scaling_curve():
    result = classify_latency_curve([1, 2, 4], [10.0, 19.0, 38.0])
    assert result.transition_batch_size == 2


def test_growth_ratios_exposed():
    result = classify_latency_curve([1, 2], [10.0, 15.0])
    assert result.growth_ratios == (1.5,)


def test_agrees_with_tklqt_transition_on_real_sweep(bert_sweep):
    """The paper's claim: both methods find a similar transition point, but
    TKLQT attributes it to the launch path. On our BERT sweep the latency
    curve flattens until the same neighborhood as the TKLQT star."""
    latency = bert_sweep.ttft_series("GH200")
    framework = classify_latency_curve(list(bert_sweep.batch_sizes), latency)
    tklqt_star = bert_sweep.transition("GH200").batch_size
    assert framework.transition_batch_size is not None
    # Same order of magnitude: within one doubling of the TKLQT star.
    ratio = framework.transition_batch_size / tklqt_star
    assert 0.5 <= ratio <= 2.0


@pytest.mark.parametrize("batches,latencies", [
    ([1], [1.0]),
    ([1, 2], [1.0]),
    ([2, 1], [1.0, 2.0]),
    ([1, 2], [1.0, -2.0]),
])
def test_invalid_inputs(batches, latencies):
    with pytest.raises(AnalysisError):
        classify_latency_curve(batches, latencies)


def test_threshold_validation():
    with pytest.raises(AnalysisError):
        classify_latency_curve([1, 2], [1.0, 2.0], flatness_threshold=1.0)


def test_unswept_batch_rejected():
    result = classify_latency_curve([1, 2], [1.0, 2.0])
    with pytest.raises(AnalysisError):
        result.bound_at(4)
