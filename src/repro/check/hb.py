"""Happens-before race detection + determinism certification (rules ``H…``).

The sixth check-pass family. Input is a :class:`repro.sim.CausalityLog`
— the opt-in record a :class:`repro.sim.SimCore` keeps of every scheduling
decision one run made (``SimCore(causality=...)``, or ``repro serve/run
--causality log.json``). From the log the pass rebuilds the run's causal
order with vector clocks and verifies that nothing the run did depended on
an event-queue tie, that synchronization was used correctly, and that the
log itself is well-formed:

* **H001** — conflicting accesses to one resource at the same instant by
  processes *unordered* by happens-before: whichever access "wins" was
  decided by the queue's tie-break, not by causality — a sim-level data
  race.
* **H002** — same-timestamp event-queue pops without a deterministic
  tie-break key (missing or duplicated tie metadata): heap pop order would
  fall through to comparing heap items, which is not a contract.
* **H003** — lost wakeup: a parked KV acquire that became grantable at
  some release (head of the FIFO wait list, enough free blocks) but was
  never granted.
* **H004** — a rendezvous joined after it completed (more joins than
  declared parties).
* **H005** — occupancy intervals overlap on a single in-order stream.
* **H006** — KV blocks acquired but never released (held past process
  exit / end of run).
* **H007** — causality-log well-formedness: strictly increasing sequence
  numbers, every resume preceded by a spawn/suspend/wake/grant, no resume
  after exit, and rendezvous release times obeying the max-law over the
  joined parties' ready times.
* **H008** — determinism certification failure: re-executing the scenario
  under an adversarially perturbed (but causally-equivalent) tie-break
  order changed a ``RequestOutcome`` — emitted by :func:`certify_scenario`,
  which also pinpoints the first divergent event.

The happens-before relation is built from: per-process program order,
spawner→spawn edges, emitter→event edges (an event whose ``src`` pid
differs from its ``pid`` was caused by the running ``src`` process), the
sequential order of everything one running process emitted, and
rendezvous join→release edges (a release merges *every* joined party's
clock, so all waiters' wakes causally follow all joins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.check.findings import Finding, Severity, register_rule
from repro.errors import ConfigurationError
from repro.sim.causality import CausalityEvent, CausalityLog
from repro.sim.queue import EventQueue, PerturbedEventQueue

H001 = register_rule(
    "H001", "hb", "same-time conflicting resource accesses unordered by "
    "happens-before (sim-level data race)")
H002 = register_rule(
    "H002", "hb", "same-timestamp event-queue tie without a deterministic "
    "tie-break key")
H003 = register_rule(
    "H003", "hb", "lost wakeup: eligible KV waiter never granted")
H004 = register_rule(
    "H004", "hb", "rendezvous joined after it completed")
H005 = register_rule(
    "H005", "hb", "occupancy intervals overlap on one in-order stream")
H006 = register_rule(
    "H006", "hb", "KV blocks acquired but never released")
H007 = register_rule(
    "H007", "hb", "malformed causality log")
H008 = register_rule(
    "H008", "hb", "outcomes diverge under a causally-equivalent tie-break "
    "perturbation (determinism certification failure)")

#: Events that read or mutate shared resource state (H001's access set).
_ACCESS_KINDS = frozenset({"occupy", "grant", "free"})


# ----------------------------------------------------------------------
# Vector clocks
# ----------------------------------------------------------------------
def vector_clocks(events: Sequence[CausalityEvent]) -> list[dict[int, int]]:
    """Per-event vector clocks over the log's happens-before edges.

    Log order is a valid topological order of the causal graph (every edge
    points from a lower global position to a higher one), so one forward
    pass suffices. Event ``a`` happened-before event ``b`` iff
    ``clocks[b].get(a.pid, 0) >= clocks[a][a.pid]`` (see
    :func:`happens_before`).
    """
    clocks: list[dict[int, int]] = []
    last_of_pid: dict[int, int] = {}
    # Everything one running process emits (its own suspends, the wakes and
    # grants it performs on others' behalf) is sequential within that
    # process's activation, so events chain on their *actor* too.
    last_of_actor: dict[int, int] = {}
    pending_joins: dict[str, list[int]] = {}
    counters: dict[int, int] = {}
    for index, event in enumerate(events):
        vc: dict[int, int] = {}

        def merge(source: int) -> None:
            for pid, count in clocks[source].items():
                if count > vc.get(pid, 0):
                    vc[pid] = count

        if event.pid >= 0 and event.pid in last_of_pid:
            merge(last_of_pid[event.pid])
        actor = event.src if event.src >= 0 else event.pid
        if actor >= 0 and actor in last_of_actor:
            merge(last_of_actor[actor])
        if actor >= 0 and actor in last_of_pid:
            merge(last_of_pid[actor])
        if event.kind == "release":
            for join_index in pending_joins.pop(event.key, []):
                merge(join_index)
        if event.kind == "join":
            pending_joins.setdefault(event.key, []).append(index)
        if event.pid >= 0:
            counters[event.pid] = counters.get(event.pid, 0) + 1
            vc[event.pid] = counters[event.pid]
            last_of_pid[event.pid] = index
        if actor >= 0:
            last_of_actor[actor] = index
        clocks.append(vc)
    return clocks


def happens_before(events: Sequence[CausalityEvent],
                   clocks: Sequence[dict[int, int]],
                   first: int, second: int) -> bool:
    """Whether ``events[first]`` happened-before ``events[second]``."""
    if first == second:
        return False
    a = events[first]
    if a.pid < 0:
        return True  # core-level events precede everything after them
    own = clocks[first].get(a.pid, 0)
    return clocks[second].get(a.pid, 0) >= own


# ----------------------------------------------------------------------
# H001 — unordered same-resource accesses
# ----------------------------------------------------------------------
def _check_races(events: Sequence[CausalityEvent],
                 clocks: Sequence[dict[int, int]]) -> list[Finding]:
    findings: list[Finding] = []
    # Conflicts only matter at *equal* timestamps: accesses at different
    # instants are serialized by time itself, which every queue discipline
    # respects. At equal instants, only happens-before fixes the order.
    groups: dict[tuple[str, float], list[int]] = {}
    for index, event in enumerate(events):
        if event.kind in _ACCESS_KINDS:
            groups.setdefault((event.key, event.time_ns), []).append(index)
    for (key, at), members in sorted(groups.items()):
        if len(members) < 2:
            continue
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                if events[first].pid == events[second].pid:
                    continue
                if (happens_before(events, clocks, first, second)
                        or happens_before(events, clocks, second, first)):
                    continue
                a, b = events[first], events[second]
                findings.append(Finding(
                    H001, Severity.ERROR, f"event {a.seq} vs {b.seq}",
                    f"resource {key!r}: {a.kind} by pid {a.pid} and "
                    f"{b.kind} by pid {b.pid} both at t={at:.0f}ns are "
                    f"unordered by happens-before; their order is decided "
                    f"by the event-queue tie-break"))
    return findings


# ----------------------------------------------------------------------
# H002 — undetermined event-queue ties
# ----------------------------------------------------------------------
def _check_ties(events: Sequence[CausalityEvent]) -> list[Finding]:
    findings: list[Finding] = []
    groups: dict[float, list[CausalityEvent]] = {}
    for event in events:
        if event.kind == "resume":
            groups.setdefault(event.time_ns, []).append(event)
    for at, members in sorted(groups.items()):
        if len(members) < 2:
            continue
        missing = [e for e in members if e.tie is None]
        for event in missing:
            findings.append(Finding(
                H002, Severity.ERROR, f"event {event.seq}",
                f"{len(members)} events pop at t={at:.0f}ns but the pop of "
                f"pid {event.pid} carries no tie-break key; pop order is "
                f"not deterministic"))
        ties = [e.tie for e in members if e.tie is not None]
        if len(set(ties)) < len(ties):
            seen: set[int] = set()
            for event in members:
                if event.tie is not None and event.tie in seen:
                    findings.append(Finding(
                        H002, Severity.ERROR, f"event {event.seq}",
                        f"duplicate tie-break key {event.tie} among "
                        f"{len(members)} pops at t={at:.0f}ns; pop order "
                        f"falls through to comparing heap items"))
                if event.tie is not None:
                    seen.add(event.tie)
    return findings


# ----------------------------------------------------------------------
# H003 / H006 — KV grant discipline
# ----------------------------------------------------------------------
@dataclass
class _PendingAcquire:
    seq: int
    pid: int
    owner: str
    blocks: int
    eligible_at: int | None = None  # seq of the free that made it grantable


def _check_kv(events: Sequence[CausalityEvent]) -> list[Finding]:
    findings: list[Finding] = []
    capacity: dict[str, int] = {}
    free_blocks: dict[str, int] = {}
    pending: dict[str, list[_PendingAcquire]] = {}
    held: dict[tuple[str, str], int] = {}
    holder_pid: dict[tuple[str, str], int] = {}
    exits: dict[int, int] = {}
    for event in events:
        if event.kind == "resource":
            capacity[event.key] = event.blocks
            free_blocks[event.key] = event.blocks
        elif event.kind == "acquire":
            pending.setdefault(event.key, []).append(_PendingAcquire(
                event.seq, event.pid, event.owner, event.blocks))
        elif event.kind == "grant":
            free_blocks[event.key] = (free_blocks.get(event.key, 0)
                                      - event.blocks)
            queue = pending.get(event.key, [])
            for i, waiter in enumerate(queue):
                if waiter.owner == event.owner:
                    del queue[i]
                    break
            slot = (event.key, event.owner)
            held[slot] = held.get(slot, 0) + event.blocks
            holder_pid[slot] = event.pid
        elif event.kind == "free":
            free_blocks[event.key] = (free_blocks.get(event.key, 0)
                                      + event.blocks)
            slot = (event.key, event.owner)
            held[slot] = held.get(slot, 0) - event.blocks
            if held[slot] <= 0:
                held.pop(slot)
                holder_pid.pop(slot, None)
            # A correct FIFO pool grants the head waiter the moment it
            # fits; remember the release that made it eligible so a
            # never-granted head is reported as a *lost wakeup*, not mere
            # capacity starvation.
            queue = pending.get(event.key, [])
            if queue and queue[0].eligible_at is None \
                    and queue[0].blocks <= free_blocks.get(event.key, 0):
                queue[0].eligible_at = event.seq
        elif event.kind == "exit":
            exits[event.pid] = event.seq
    for key, queue in sorted(pending.items()):
        for waiter in queue:
            if waiter.eligible_at is None:
                continue
            findings.append(Finding(
                H003, Severity.ERROR, f"event {waiter.seq}",
                f"lost wakeup on {key!r}: pid {waiter.pid}'s acquire of "
                f"{waiter.blocks} blocks for owner {waiter.owner} became "
                f"grantable at the release at event {waiter.eligible_at} "
                f"but was never granted"))
    for (key, owner), blocks in sorted(held.items()):
        pid = holder_pid.get((key, owner), -1)
        where = (f"after pid {pid}'s exit (event {exits[pid]})"
                 if pid in exits else "at end of log")
        findings.append(Finding(
            H006, Severity.ERROR, f"resource {key!r} owner {owner}",
            f"{blocks} blocks acquired by pid {pid} for owner {owner} "
            f"were never released ({where})"))
    return findings


# ----------------------------------------------------------------------
# H004 — joins after completion
# ----------------------------------------------------------------------
def _check_rendezvous(events: Sequence[CausalityEvent]) -> list[Finding]:
    findings: list[Finding] = []
    joins: dict[str, int] = {}
    parties: dict[str, int] = {}
    released: set[str] = set()
    for event in events:
        if event.kind == "join":
            count = joins.get(event.key, 0)
            declared = parties.setdefault(event.key, event.parties)
            if event.key in released or count >= declared:
                findings.append(Finding(
                    H004, Severity.ERROR, f"event {event.seq}",
                    f"rendezvous {event.key!r}: pid {event.pid} joined "
                    f"after all {declared} parties completed it"))
            joins[event.key] = count + 1
        elif event.kind == "release":
            released.add(event.key)
    return findings


# ----------------------------------------------------------------------
# H005 — stream occupancy overlap
# ----------------------------------------------------------------------
def _check_overlap(events: Sequence[CausalityEvent]) -> list[Finding]:
    findings: list[Finding] = []
    streams: dict[str, list[CausalityEvent]] = {}
    for event in events:
        # In-order *streams* forbid overlap; the shared link is a bandwidth
        # resource where concurrent transfers are a modeling choice, not a
        # bug, so only device streams are held to the rule.
        if event.kind == "occupy" and event.key.startswith("device"):
            streams.setdefault(event.key, []).append(event)
    for key, occupancies in sorted(streams.items()):
        ordered = sorted(occupancies, key=lambda e: (e.time_ns, e.end_ns))
        for prev, event in zip(ordered, ordered[1:]):
            prev_end = prev.end_ns if prev.end_ns is not None else 0.0
            start = event.time_ns
            if start < prev_end:
                findings.append(Finding(
                    H005, Severity.ERROR, f"event {event.seq}",
                    f"stream {key}: occupancy [{start:.0f}, "
                    f"{event.end_ns:.0f})ns by pid {event.pid} overlaps "
                    f"[{prev.time_ns:.0f}, {prev_end:.0f})ns by pid "
                    f"{prev.pid} (in-order stream)"))
    return findings


# ----------------------------------------------------------------------
# H007 — log well-formedness
# ----------------------------------------------------------------------
#: Events that schedule a future resume for their pid.
_SCHEDULING_KINDS = frozenset({"spawn", "suspend", "wake", "grant"})


def _check_wellformed(events: Sequence[CausalityEvent]) -> list[Finding]:
    findings: list[Finding] = []
    previous_seq = -1
    pending: dict[int, int] = {}
    exited: set[int] = set()
    seen: set[int] = set()
    join_times: dict[str, list[float]] = {}
    for event in events:
        if event.seq <= previous_seq:
            findings.append(Finding(
                H007, Severity.ERROR, f"event {event.seq}",
                f"sequence numbers not strictly increasing "
                f"({previous_seq} then {event.seq})"))
        previous_seq = event.seq
        pid = event.pid
        if pid >= 0 and pid not in seen:
            seen.add(pid)
            if event.kind in ("resume", "suspend", "exit"):
                findings.append(Finding(
                    H007, Severity.ERROR, f"event {event.seq}",
                    f"pid {pid}'s first event is {event.kind!r}, not "
                    f"'spawn': the process was never scheduled"))
        if event.kind in _SCHEDULING_KINDS:
            pending[pid] = pending.get(pid, 0) + 1
        elif event.kind == "resume":
            if pid in exited:
                findings.append(Finding(
                    H007, Severity.ERROR, f"event {event.seq}",
                    f"pid {pid} resumed after its exit"))
            elif pending.get(pid, 0) == 0:
                findings.append(Finding(
                    H007, Severity.ERROR, f"event {event.seq}",
                    f"pid {pid} resumed with no prior spawn/suspend/"
                    f"wake/grant: nothing scheduled this pop"))
            pending[pid] = 0
        elif event.kind == "exit":
            exited.add(pid)
        if event.kind == "join":
            join_times.setdefault(event.key, []).append(event.time_ns)
        elif event.kind == "release":
            joined = join_times.get(event.key, [])
            if not joined:
                findings.append(Finding(
                    H007, Severity.ERROR, f"event {event.seq}",
                    f"rendezvous {event.key!r} released with no recorded "
                    f"joins"))
            else:
                expected = max(joined)
                release_at = event.time_ns
                if release_at < expected or expected < release_at:
                    findings.append(Finding(
                        H007, Severity.ERROR, f"event {event.seq}",
                        f"rendezvous {event.key!r} released at "
                        f"{release_at:.0f}ns, but the max-law over its "
                        f"{len(joined)} joined parties gives "
                        f"{expected:.0f}ns"))
            join_times.pop(event.key, None)
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def check_causality(log: CausalityLog) -> list[Finding]:
    """Run rules H001–H007 over one run's causality log."""
    events = log.events
    findings = _check_wellformed(events)
    clocks = vector_clocks(events)
    findings.extend(_check_races(events, clocks))
    findings.extend(_check_ties(events))
    findings.extend(_check_kv(events))
    findings.extend(_check_rendezvous(events))
    findings.extend(_check_overlap(events))
    return findings


#: A scenario runner: executes one deterministic simulation under the given
#: event queue, recording into the given causality log, and returns the
#: run's outcome rows (tuples of plain comparable values).
ScenarioRunner = Callable[
    [EventQueue | None, CausalityLog | None], list[tuple]]


@dataclass(frozen=True)
class HbScenario:
    """One named scenario the hb pass can analyze and certify."""

    name: str
    description: str
    run: ScenarioRunner


def certify_scenario(scenario: HbScenario) -> tuple[list[Finding],
                                                    CausalityLog]:
    """Determinism certification: FIFO run vs adversarial LIFO-tie run.

    Executes the scenario twice — once on the production FIFO tie-break
    queue, once on :class:`~repro.sim.queue.PerturbedEventQueue` (LIFO at
    equal times, causally equivalent) — and diffs the outcome rows and the
    per-process causality projections. Any disagreement is an H008 finding
    pinpointing the first divergent outcome and the first divergent event.
    Returns the findings and the baseline log (for the H001–H007 rules).
    """
    base_log = CausalityLog()
    base_rows = scenario.run(EventQueue(), base_log)
    perturbed_log = CausalityLog()
    perturbed_rows = scenario.run(PerturbedEventQueue(), perturbed_log)
    findings: list[Finding] = []
    if base_rows != perturbed_rows:
        divergent = min(len(base_rows), len(perturbed_rows))
        for index, (left, right) in enumerate(zip(base_rows,
                                                  perturbed_rows)):
            if left != right:
                divergent = index
                break
        detail = (f"outcome {divergent}: {base_rows[divergent]} vs "
                  f"{perturbed_rows[divergent]}"
                  if divergent < min(len(base_rows), len(perturbed_rows))
                  else f"outcome counts {len(base_rows)} vs "
                       f"{len(perturbed_rows)}")
        event_seq = _first_divergent_event(base_log, perturbed_log)
        where = (f"{scenario.name}: event {event_seq}"
                 if event_seq is not None else scenario.name)
        findings.append(Finding(
            H008, Severity.ERROR, where,
            f"outcomes changed under a causally-equivalent tie-break "
            f"perturbation — the result depends on event-queue pop order "
            f"({detail})"))
    return findings, base_log


def _projection(log: CausalityLog) -> dict[int, list[tuple]]:
    """Per-pid event streams, stripped of tie metadata and global order.

    A tie-break perturbation legitimately reorders the *interleaving*; a
    deterministic simulation keeps every process's own event stream
    invariant. The projection is what certification compares.
    """
    streams: dict[int, list[tuple]] = {}
    for event in log.events:
        streams.setdefault(event.pid, []).append(
            (event.kind, event.time_ns, event.key, event.owner,
             event.blocks, event.parties, event.end_ns))
    return streams


def _first_divergent_event(base: CausalityLog,
                           perturbed: CausalityLog) -> int | None:
    """Baseline seq of the first event the perturbed run changed.

    Prefers the first *semantic* divergence (a per-pid event stream that
    changed); when every process's own stream is intact and only the
    interleaving flipped, falls back to the first global-order difference.
    """
    base_streams = _projection(base)
    perturbed_streams = _projection(perturbed)
    divergence: int | None = None
    for pid, stream in sorted(base_streams.items()):
        other = perturbed_streams.get(pid, [])
        position = None
        for index, (left, right) in enumerate(zip(stream, other)):
            if left != right:
                position = index
                break
        if position is None and len(stream) != len(other):
            position = min(len(stream), len(other))
        if position is None:
            continue
        count = -1
        for event in base.events:
            if event.pid == pid:
                count += 1
                if count == position:
                    if divergence is None or event.seq < divergence:
                        divergence = event.seq
                    break
    if divergence is not None:
        return divergence
    for left, right in zip(base.events, perturbed.events):
        if _shape(left) != _shape(right):
            return left.seq
    return None


def _shape(event: CausalityEvent) -> tuple:
    """An event minus run-specific bookkeeping (seq, tie, src)."""
    return (event.kind, event.time_ns, event.pid, event.key, event.owner,
            event.blocks, event.parties, event.end_ns)


# ----------------------------------------------------------------------
# Canonical scenarios (what CI certifies on every push)
# ----------------------------------------------------------------------
def _outcome_rows(outcomes) -> list[tuple]:
    return [(o.request.request_id, o.ttft_ns, o.completion_ns,
             o.batch_size, o.queue_ns, o.replica) for o in outcomes]


def _mixed_stream_run(queue: EventQueue | None,
                      causality: CausalityLog | None) -> list[tuple]:
    from repro.analysis.pareto import mixed_prompt_requests
    from repro.hardware import get_platform
    from repro.serving.continuous import ContinuousBatchPolicy
    from repro.serving.latency import LatencyModel
    from repro.serving.runtime import simulate_serving
    from repro.workloads import GPT2

    requests = mixed_prompt_requests(seed=3)
    latency = LatencyModel(platform=get_platform("GH200"))
    result = simulate_serving(
        requests, GPT2, latency,
        policy=ContinuousBatchPolicy(max_active=8),
        queue=queue, causality=causality)
    return _outcome_rows(result.outcomes)


def _pp_kv_offload_run(queue: EventQueue | None,
                       causality: CausalityLog | None) -> list[tuple]:
    from repro.engine.pp import PPConfig
    from repro.hardware import get_platform
    from repro.kvcache import KvCacheConfig, KvPolicy
    from repro.serving.continuous import ContinuousBatchPolicy
    from repro.serving.latency import LatencyModel
    from repro.serving.requests import poisson_requests
    from repro.serving.runtime import simulate_serving
    from repro.workloads import GPT2

    requests = poisson_requests(rate_per_s=40.0, duration_s=0.3,
                                prompt_len=512, output_tokens=128, seed=7)
    latency = LatencyModel(platform=get_platform("GH200"),
                           pp=PPConfig(stages=2, microbatches=2))
    result = simulate_serving(
        requests, GPT2, latency,
        policy=ContinuousBatchPolicy(max_active=8, chunk_tokens=256),
        kv=KvCacheConfig(policy=KvPolicy.OFFLOAD, pool_gib=0.04),
        queue=queue, causality=causality)
    return _outcome_rows(result.outcomes)


def _cluster_run(queue: EventQueue | None,
                 causality: CausalityLog | None) -> list[tuple]:
    from repro.hardware import get_platform
    from repro.kvcache import KvCacheConfig, KvPolicy
    from repro.serving.cluster import RouterPolicy, simulate_cluster
    from repro.serving.continuous import ContinuousBatchPolicy
    from repro.serving.latency import LatencyModel
    from repro.traffic import (
        ArrivalFamily,
        ArrivalSpec,
        PrefixSpec,
        TrafficConfig,
        generate_traffic,
    )
    from repro.workloads import GPT2

    requests = generate_traffic(TrafficConfig(
        arrivals=ArrivalSpec(family=ArrivalFamily.BURSTY, rate_per_s=400.0,
                             duration_s=0.05, seed=7),
        prompt_len=256, prompt_jitter=64, output_tokens=24, output_jitter=8,
        prefix=PrefixSpec(share=0.5, prefix_len=128, pool=2),
        sessions=6, tenants=2))
    latency = LatencyModel(platform=get_platform("GH200"))
    result = simulate_cluster(
        requests, GPT2, latency,
        policy=ContinuousBatchPolicy(max_active=8),
        router=RouterPolicy.LEAST_LOADED, replicas=4,
        kv=KvCacheConfig(policy=KvPolicy.NONE, prefix_caching=True),
        queue=queue, causality=causality)
    return _outcome_rows(result.outcomes)


def _host_contention_run(queue: EventQueue | None,
                         causality: CausalityLog | None) -> list[tuple]:
    from repro.hardware import get_platform
    from repro.host import HostConfig, HostModel
    from repro.serving.cluster import RouterPolicy, simulate_cluster
    from repro.serving.continuous import ContinuousBatchPolicy
    from repro.serving.latency import LatencyModel
    from repro.serving.requests import poisson_requests
    from repro.workloads import GPT2

    requests = poisson_requests(rate_per_s=300.0, duration_s=0.05,
                                prompt_len=128, output_tokens=16, seed=11)
    latency = LatencyModel(platform=get_platform("AMD+A100"))
    # Four replicas on a four-core host: every engine step contends for a
    # core with the other replicas and the router, so the causality log
    # carries host occupancy alongside streams and routing.
    host = HostModel.for_platform("AMD+A100", replicas=4,
                                  config=HostConfig(cores=4))
    result = simulate_cluster(
        requests, GPT2, latency,
        policy=ContinuousBatchPolicy(max_active=4),
        router=RouterPolicy.ROUND_ROBIN, replicas=4, host=host,
        queue=queue, causality=causality)
    return _outcome_rows(result.outcomes)


#: The scenarios ``repro check hb`` runs by default: the canonical
#: mixed-stream serving run, the PP + chunked-prefill + KV-offload run,
#: the routed cluster run with copy-on-write prefix caching, and the
#: host-contention cluster run on a finite core pool — the
#: layers with the richest synchronization (the streams and knobs mirror
#: ``tests/scenarios.py``).
CANONICAL_SCENARIOS: tuple[HbScenario, ...] = (
    HbScenario(
        name="mixed-stream",
        description="mixed long-prompt serving stream (seed 3), continuous "
                    "batching at max_active=8 on GH200",
        run=_mixed_stream_run),
    HbScenario(
        name="pp-kv-offload",
        description="KV-pressure stream (seed 7) with chunked prefill "
                    "(256 tokens), pp=2x2 pricing, and an offloading "
                    "0.04 GiB paged pool on GH200",
        run=_pp_kv_offload_run),
    HbScenario(
        name="cluster",
        description="bursty tagged stream (seed 7) routed least-loaded "
                    "across 4 replicas with copy-on-write prefix caching "
                    "on GH200",
        run=_cluster_run),
    HbScenario(
        name="host-contention",
        description="Poisson stream (seed 11) round-robin across 4 replicas "
                    "contending for a 4-core AMD+A100 host pool",
        run=_host_contention_run),
)


def get_scenario(name: str) -> HbScenario:
    for scenario in CANONICAL_SCENARIOS:
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in CANONICAL_SCENARIOS)
    raise ConfigurationError(f"unknown hb scenario {name!r} (known: {known})")
