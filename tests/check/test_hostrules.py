"""N-rules: core exclusivity, NUMA affinity, FIFO replay, conservation."""

from repro.check import check_host_metadata


def _grant(owner, core, domain, start, end, remote=False):
    return {"owner": owner, "core": core, "domain": domain,
            "start_ns": float(start), "end_ns": float(end),
            "cpu_ns": float(end - start), "remote": remote,
            "requested_ns": float(start)}


def _meta(grants=(), cores=None, pinned=False, numa=None):
    grants = [dict(g) for g in grants]
    if cores is None:
        busy: dict[int, float] = {}
        for g in grants:
            busy[g["core"]] = (busy.get(g["core"], 0.0)
                               + g["end_ns"] - g["start_ns"])
        layout = {0: 0, 1: 0, 2: 1, 3: 1}
        cores = [{"index": i, "domain": d, "busy_ns": busy.get(i, 0.0),
                  "grants": sum(1 for g in grants if g["core"] == i)}
                 for i, d in layout.items()]
    return {"name": "host", "platform": "AMD+A100", "remote_penalty": 1.3,
            "pinned": pinned, "numa_override": numa, "cores": cores,
            "replica_domains": {"0": [0, 2], "1": [1, 3]},
            "grants": grants}


def _rule_ids(findings):
    return {f.rule_id for f in findings}


# ----------------------------------------------------------------------
# Clean logs
# ----------------------------------------------------------------------
def test_clean_schedule_has_no_findings():
    meta = _meta([
        _grant("replica0", 0, 0, 0, 10),
        _grant("replica1", 2, 1, 0, 10),
        _grant("router", 1, 0, 2, 3),
        _grant("replica0", 0, 0, 10, 25),
    ])
    assert check_host_metadata(meta) == []


def test_empty_host_block_is_clean():
    assert check_host_metadata(_meta()) == []


# ----------------------------------------------------------------------
# N001 — core exclusivity
# ----------------------------------------------------------------------
def test_n001_overlapping_grants_on_one_core():
    meta = _meta([
        _grant("replica0", 0, 0, 0, 10),
        _grant("replica2", 0, 0, 6, 12),  # starts before core 0 frees
    ])
    findings = check_host_metadata(meta)
    assert "N001" in _rule_ids(findings)
    assert any("overlap" in f.message for f in findings)


def test_n001_back_to_back_grants_are_legal():
    meta = _meta([
        _grant("replica0", 0, 0, 0, 10),
        _grant("replica2", 0, 0, 10, 12),
    ])
    assert "N001" not in _rule_ids(check_host_metadata(meta))


# ----------------------------------------------------------------------
# N002 — NUMA affinity
# ----------------------------------------------------------------------
def test_n002_local_grant_off_its_home_domain():
    meta = _meta([_grant("replica0", 2, 1, 0, 10)])  # home is domain 0
    findings = check_host_metadata(meta)
    assert _rule_ids(findings) == {"N002"}
    assert "home domain is 0" in findings[0].message


def test_n002_remote_grant_is_a_priced_spill_not_a_violation():
    meta = _meta([_grant("replica0", 2, 1, 0, 10, remote=True)])
    assert check_host_metadata(meta) == []


def test_n002_pinned_run_forbids_remote_grants():
    meta = _meta([_grant("replica0", 2, 1, 0, 10, remote=True)],
                 pinned=True)
    findings = check_host_metadata(meta)
    assert _rule_ids(findings) == {"N002"}
    assert "--pin" in findings[0].message


def test_n002_numa_override_moves_every_home():
    # With --numa 1 even replica0 and the router belong to domain 1.
    meta = _meta([
        _grant("replica0", 2, 1, 0, 10),
        _grant("router", 3, 1, 0, 5),
    ], numa=1)
    assert check_host_metadata(meta) == []
    meta = _meta([_grant("router", 0, 0, 0, 5)], numa=1)
    assert _rule_ids(check_host_metadata(meta)) == {"N002"}


def test_n002_autoscaled_replica_without_home_is_skipped():
    # replica9 is not in replica_domains: scaled out mid-run, no home.
    meta = _meta([_grant("replica9", 3, 1, 0, 10)])
    assert check_host_metadata(meta) == []


# ----------------------------------------------------------------------
# N003 — deterministic replay order
# ----------------------------------------------------------------------
def test_n003_out_of_order_starts_on_one_core():
    meta = _meta([
        _grant("replica0", 0, 0, 50, 60),
        _grant("replica2", 0, 0, 10, 20),  # logged after, starts before
    ])
    assert "N003" in _rule_ids(check_host_metadata(meta))


def test_n003_interleaved_cores_are_fine():
    meta = _meta([
        _grant("replica0", 0, 0, 50, 60),
        _grant("replica1", 2, 1, 10, 20),  # earlier, but another core
    ])
    assert check_host_metadata(meta) == []


# ----------------------------------------------------------------------
# N004 — core-time conservation
# ----------------------------------------------------------------------
def test_n004_busy_total_must_match_grant_log():
    grants = [_grant("replica0", 0, 0, 0, 10)]
    meta = _meta(grants)
    meta["cores"][0]["busy_ns"] = 25.0
    findings = check_host_metadata(meta)
    assert _rule_ids(findings) == {"N004"}
    assert "grant log sums" in findings[0].message


def test_n004_grants_on_an_unlisted_core():
    meta = _meta([_grant("replica0", 7, 0, 0, 10)])
    findings = check_host_metadata(meta)
    assert "N004" in _rule_ids(findings)
    assert any("does not list" in f.message for f in findings)


def test_findings_carry_location_context():
    meta = _meta([
        _grant("replica0", 0, 0, 0, 10),
        _grant("replica2", 0, 0, 6, 12),
    ])
    findings = check_host_metadata(meta, where="trace.json host")
    assert all(f.location.startswith("trace.json host") for f in findings)
