"""EventQueue ordering and error behavior."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue


def test_pops_in_time_order():
    queue = EventQueue()
    queue.push(30.0, "c")
    queue.push(10.0, "a")
    queue.push(20.0, "b")
    assert [queue.pop() for _ in range(3)] == [
        (10.0, "a"), (20.0, "b"), (30.0, "c")]


def test_fifo_tie_break_at_equal_times():
    queue = EventQueue()
    for item in ("first", "second", "third"):
        queue.push(5.0, item)
    assert [queue.pop()[1] for _ in range(3)] == ["first", "second", "third"]


def test_peek_does_not_pop():
    queue = EventQueue()
    queue.push(7.0, "x")
    assert queue.peek_time() == 7.0
    assert len(queue) == 1
    assert queue.pop() == (7.0, "x")


def test_len_and_bool():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0
    queue.push(0.0, "x")
    assert queue
    assert len(queue) == 1


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.push(-1.0, "x")


def test_empty_pop_and_peek_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.pop()
    with pytest.raises(SimulationError):
        queue.peek_time()


def test_interleaved_push_pop_stays_ordered():
    queue = EventQueue()
    queue.push(10.0, "late")
    queue.push(1.0, "early")
    assert queue.pop() == (1.0, "early")
    queue.push(5.0, "middle")
    assert queue.pop() == (5.0, "middle")
    assert queue.pop() == (10.0, "late")


# ----------------------------------------------------------------------
# pop_entry / tie-break metadata (rule H002's witness)
# ----------------------------------------------------------------------
def test_pop_entry_exposes_monotone_tie_keys():
    queue = EventQueue()
    for item in ("a", "b", "c"):
        queue.push(5.0, item)
    entries = [queue.pop_entry() for _ in range(3)]
    assert [item for _, _, item in entries] == ["a", "b", "c"]
    ties = [tie for _, tie, _ in entries]
    assert ties == sorted(ties)
    assert len(set(ties)) == 3


def _drain(queue):
    """Push the same mixed same-time workload and record the pop order."""
    queue.push(10.0, "late")
    for item in ("t1", "t2", "t3"):
        queue.push(5.0, item)
    order = [queue.pop() for _ in range(2)]
    queue.push(5.0, "t4")
    queue.push(0.0, "early")
    while queue:
        order.append(queue.pop())
    return order


def test_identical_runs_pop_identically():
    # The explicit insertion-sequence tie-break makes pop order a pure
    # function of the push sequence: no heap internals, no item ordering.
    assert _drain(EventQueue()) == _drain(EventQueue())


def test_reference_queue_agrees_with_production_queue():
    from repro.sim import ReferenceEventQueue

    reference = ReferenceEventQueue()
    assert _drain(EventQueue()) == _drain(reference)
    assert reference.popped == 6


# ----------------------------------------------------------------------
# PerturbedEventQueue: the certifier's adversarial tie-break
# ----------------------------------------------------------------------
def test_perturbed_queue_is_lifo_at_ties():
    from repro.sim import PerturbedEventQueue

    queue = PerturbedEventQueue()
    for item in ("first", "second", "third"):
        queue.push(5.0, item)
    assert [queue.pop()[1] for _ in range(3)] == ["third", "second", "first"]


def test_perturbed_queue_preserves_time_order():
    from repro.sim import PerturbedEventQueue

    queue = PerturbedEventQueue()
    queue.push_many([(30.0, "c"), (10.0, "a"), (20.0, "b")])
    assert [queue.pop() for _ in range(3)] == [
        (10.0, "a"), (20.0, "b"), (30.0, "c")]
    with pytest.raises(SimulationError):
        queue.push(-1.0, "x")
