"""Pass orchestration: run check passes over whole artifact families.

The CLI (``repro check``) and CI call these helpers; each returns a
:class:`~repro.check.findings.CheckReport` covering every artifact it
examined, so a single run verifies the full workload catalog.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.check.findings import CheckReport
from repro.check.code import lint_path
from repro.check.graph import check_lowering, check_sharding
from repro.check.schedule import (
    check_schedules,
    schedules_from_lowering,
    schedules_from_pp,
    schedules_from_serving,
    schedules_from_trace,
)
from repro.check.tracelint import lint_chrome_file

if TYPE_CHECKING:
    from repro.serving.runtime import EngineSession
from repro.engine.lowering import lower_graph
from repro.engine.tp import DispatchMode, TPConfig, shard_lowered
from repro.workloads.builder import build_graph
from repro.workloads.config import ModelConfig

#: TP degrees the catalog passes try; degrees that do not divide a model's
#: head count are skipped (the engine rejects them by construction).
DEFAULT_CHECK_DEGREES: tuple[int, ...] = (1, 2, 4, 8)


def _tp_degrees(model: ModelConfig, degrees: Sequence[int]) -> list[int]:
    return [d for d in degrees if model.heads % d == 0]


def check_workload_graphs(
    models: Sequence[ModelConfig],
    degrees: Sequence[int] = DEFAULT_CHECK_DEGREES,
    batch_size: int = 1,
    seq_len: int = 128,
) -> CheckReport:
    """Graph-verify every model's lowering and TP shardings."""
    report = CheckReport()
    for model in models:
        graph = build_graph(model, batch_size, seq_len)
        lowered = lower_graph(graph)
        report.extend(check_lowering(lowered), f"{model.name} lowering")
        for degree in _tp_degrees(model, degrees):
            tp = TPConfig(degree=degree)
            sharded = shard_lowered(lowered, tp)
            report.extend(check_sharding(lowered, sharded, tp),
                          f"{model.name} tp={degree}")
    return report


def check_workload_schedules(
    models: Sequence[ModelConfig],
    degrees: Sequence[int] = DEFAULT_CHECK_DEGREES,
    batch_size: int = 1,
    seq_len: int = 128,
    dispatch: DispatchMode = DispatchMode.THREAD_PER_DEVICE,
    pp_stages: int = 1,
    pp_microbatches: int = 1,
) -> CheckReport:
    """Hazard-check the TP (and optionally PP) schedules per model.

    With ``pp_stages > 1`` each model's lowering is additionally
    partitioned into pipeline stages and the stage handoff schedules are
    checked (rules S008 and the generic rendezvous rules).
    """
    report = CheckReport()
    for model in models:
        graph = build_graph(model, batch_size, seq_len)
        lowered = lower_graph(graph)
        for degree in _tp_degrees(model, degrees):
            if degree > 1:
                tp = TPConfig(degree=degree, dispatch=dispatch)
                schedules = schedules_from_lowering(
                    shard_lowered(lowered, tp), tp)
                report.extend(check_schedules(schedules),
                              f"{model.name} tp={degree} {dispatch.value}")
            if pp_stages > 1:
                from repro.engine.pp import PPConfig, partition_lowered

                tp = TPConfig(degree=degree)
                pp = PPConfig(stages=pp_stages,
                              microbatches=pp_microbatches)
                stage_lowerings = partition_lowered(
                    shard_lowered(lowered, tp), pp_stages)
                schedules = schedules_from_pp(stage_lowerings, pp,
                                              tp_degree=degree)
                report.extend(
                    check_schedules(schedules),
                    f"{model.name} tp={degree} pp={pp_stages}"
                    f"x{pp_microbatches}")
    return report


def check_trace_files(paths: Sequence[str | Path]) -> CheckReport:
    """Lint Chrome-trace files (raw order, structure, metric identities).

    Traces exported from KV-cache-enabled serving runs carry their pool
    audit trail in ``kv`` metadata; those additionally get the K001-K004
    accounting replay (:mod:`repro.check.kvrules`). Traces from cluster
    runs carry routing decisions in ``cluster`` metadata and get the
    R001/R002 conservation and affinity replay
    (:mod:`repro.check.clusterrules`) the same way, and traces from
    host-contention runs carry the CPU grant log in ``host`` metadata and
    get the N001-N004 core-schedule replay
    (:mod:`repro.check.hostrules`).
    """
    from repro.check.clusterrules import check_cluster_metadata
    from repro.check.hostrules import check_host_metadata
    from repro.check.kvrules import check_kv_metadata

    report = CheckReport()
    for path in paths:
        findings, trace = lint_chrome_file(path)
        report.extend(findings, str(path))
        if trace is not None and "kv" in trace.metadata:
            report.extend(check_kv_metadata(trace.metadata["kv"]),
                          f"{path} (kv)")
        if trace is not None and "cluster" in trace.metadata:
            report.extend(check_cluster_metadata(trace.metadata["cluster"]),
                          f"{path} (cluster)")
        if trace is not None and "host" in trace.metadata:
            report.extend(check_host_metadata(trace.metadata["host"]),
                          f"{path} (host)")
    return report


def check_trace_schedules(paths: Sequence[str | Path]) -> CheckReport:
    """Hazard-check the device schedules reconstructed from trace files.

    Reads each Chrome trace, lifts its kernels into per-device schedules
    (collectives grouped by simultaneity), and runs the static schedule
    checker over them — so an exported serving or engine trace can be
    schedule-verified without the run that produced it.
    """
    report = CheckReport()
    for path in paths:
        findings, trace = lint_chrome_file(path)
        fatal = [f for f in findings if f.rule_id in ("T001", "T002")]
        if trace is None or fatal:
            report.extend(fatal or findings, f"{path} (parse)")
            continue
        schedules = schedules_from_trace(trace)
        report.extend(check_schedules(schedules), f"{path} schedules")
    return report


def check_serving_schedules(sessions: Iterable[EngineSession]) -> CheckReport:
    """Hazard-check the schedules a finished serving run issued."""
    report = CheckReport()
    schedules = schedules_from_serving(sessions)
    report.extend(check_schedules(schedules),
                  f"serving run ({len(schedules)} devices)")
    return report


def check_source(root: str | Path) -> CheckReport:
    """Run the custom AST lint over a package tree."""
    report = CheckReport()
    findings, checked = lint_path(root)
    report.findings.extend(findings)
    report.checked.extend(checked)
    return report


def check_causality_logs(paths: Sequence[str | Path]) -> CheckReport:
    """Happens-before-verify exported causality logs (rules H001-H007).

    Each path is a JSON sidecar produced by ``repro serve/run --causality``
    (schema ``repro.causality/v1``).
    """
    from repro.check.hb import check_causality
    from repro.sim.causality import CausalityLog

    report = CheckReport()
    for path in paths:
        log = CausalityLog.load(path)
        report.extend(check_causality(log),
                      f"{path} ({len(log.events)} events)")
    return report


def check_hb_scenarios(names: Sequence[str] = (),
                       certify: bool = False) -> CheckReport:
    """Run the hb pass over the canonical scenarios (all by default).

    Each scenario is simulated with causality logging on and its log is
    checked against H001-H007. With ``certify=True`` each scenario is
    *additionally* re-executed under an adversarially perturbed
    (causally-equivalent) tie-break order and any ``RequestOutcome``
    divergence is reported as H008.
    """
    from repro.check.hb import (
        CANONICAL_SCENARIOS,
        certify_scenario,
        check_causality,
        get_scenario,
    )
    from repro.sim.causality import CausalityLog
    from repro.sim.queue import EventQueue

    scenarios = ([get_scenario(name) for name in names]
                 if names else list(CANONICAL_SCENARIOS))
    report = CheckReport()
    for scenario in scenarios:
        if certify:
            findings, log = certify_scenario(scenario)
            report.extend(findings, f"{scenario.name} (certify)")
        else:
            log = CausalityLog()
            scenario.run(EventQueue(), log)
        report.extend(check_causality(log),
                      f"{scenario.name} ({len(log.events)} events)")
    return report
