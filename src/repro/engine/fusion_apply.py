"""Applying a kernel-fusion plan to a lowered kernel stream.

The paper's proximity-score method *recommends* deterministic chains; this
module actually rewrites the per-iteration kernel stream so each recommended
chain launches once. Per the paper's assumption (Section V-C), fusion saves
launches only: the fused kernel performs the sum of the member kernels' work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.lowering import KernelTask
from repro.errors import AnalysisError


@dataclass(frozen=True)
class FusionPlan:
    """An ordered set of kernel-name chains to fuse.

    Chains are applied greedily left-to-right over the kernel stream; longer
    chains are tried first at each position.
    """

    chains: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        for chain in self.chains:
            if len(chain) < 2:
                raise AnalysisError(f"fusion chain must have length >= 2: {chain}")

    @property
    def max_length(self) -> int:
        return max((len(c) for c in self.chains), default=0)


def fused_kernel_name(chain_length: int, index: int) -> str:
    """Name for a fused kernel covering ``chain_length`` originals."""
    return f"fused_chain_L{chain_length}_id{index}"


def apply_fusion_plan(kernels: list[KernelTask], plan: FusionPlan) -> list[KernelTask]:
    """Rewrite a kernel stream so each matched chain becomes one kernel.

    Matching is greedy and non-overlapping: at each position the longest
    matching chain wins; unmatched kernels pass through unchanged.
    """
    by_length = sorted(plan.chains, key=len, reverse=True)
    names = [k.name for k in kernels]
    out: list[KernelTask] = []
    fused_id = 0
    i = 0
    while i < len(kernels):
        matched = None
        for chain in by_length:
            length = len(chain)
            if i + length <= len(names) and tuple(names[i:i + length]) == chain:
                matched = chain
                break
        if matched is None:
            out.append(kernels[i])
            i += 1
            continue
        members = kernels[i:i + len(matched)]
        out.append(KernelTask(
            name=fused_kernel_name(len(matched), fused_id),
            flops=sum(k.flops for k in members),
            bytes_read=sum(k.bytes_read for k in members),
            bytes_written=sum(k.bytes_written for k in members),
            members=tuple(members),
        ))
        fused_id += 1
        i += len(matched)
    return out


def launches_saved(kernels: list[KernelTask], plan: FusionPlan) -> int:
    """Launches removed by applying ``plan`` to ``kernels``."""
    return len(kernels) - len(apply_fusion_plan(kernels, plan))
