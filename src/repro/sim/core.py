"""SimCore — event-driven process scheduler over named resources.

Processes are Python generators. A process yields *requests* to the core and
is resumed with the simulation time at which the request was granted:

* ``("at", t)`` — suspend until absolute time ``t``;
* ``("join", rendezvous, ready_ns)`` — rendezvous with the other parties of
  a collective; the process resumes once every party has joined, at the
  maximum of all ``ready_ns`` values (the time the collective can start);
* ``("acquire", resource, owner, blocks, ready_ns)`` — block until a
  registered resource (a :class:`repro.kvcache.KvCacheResource` granting
  KV blocks, or a :class:`repro.host.CpuPool` granting whole-core
  reservations) can grant ``blocks`` units to ``owner`` (FIFO among
  waiters);
* ``("release", resource, owner, ready_ns)`` — free every unit ``owner``
  holds on ``resource``, waking eligible waiters.

A process that never yields simply runs to completion on its first
scheduling slot — the single-dispatch-thread execution modes are exactly
that degenerate case, which is what lets the refactored engine reproduce the
legacy single-threaded executor bit-for-bit at TP=1.
"""

from __future__ import annotations

import heapq
import inspect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Hashable, Iterable

if TYPE_CHECKING:  # avoids a cycle: repro.kvcache builds on this module.
    from repro.host.pool import CpuPool
    from repro.kvcache.resource import KvCacheResource

from repro.errors import SimulationError
from repro.sim.causality import CausalityLog
from repro.sim.queue import EventQueue
from repro.sim.resources import CpuThread, GpuDevice, LinkResource, StreamResource

Process = Generator[tuple, float, None]


def _probe() -> Generator[tuple, float, None]:
    yield ()


#: Python 3.11+ exposes generator state as a cheap attribute; older
#: interpreters fall back to ``inspect.getgeneratorstate`` (same semantics,
#: one string comparison and a function call slower per event).
_HAS_GI_SUSPENDED = hasattr(_probe(), "gi_suspended")

#: Events processed by every :class:`SimCore` in this interpreter, across
#: engine, serving, and KV simulations. The perf harness reads this before
#: and after a scenario to report sim-events/sec; nothing inside the
#: simulation depends on it.
EVENTS_TOTAL = 0


@dataclass(slots=True)
class Rendezvous:
    """A single-use synchronization point for ``parties`` processes.

    Collectives (and iteration barriers) release every participant at the
    maximum of the joined ready times — the instant the slowest participant
    is able to start.
    """

    parties: int
    key: Hashable = None
    waiters: list[tuple[Process, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.parties < 1:
            raise SimulationError("rendezvous needs at least one party")

    @property
    def complete(self) -> bool:
        return len(self.waiters) >= self.parties

    def join(self, process: Process, ready_ns: float) -> None:
        if self.complete:
            raise SimulationError(
                f"rendezvous {self.key!r} already complete: "
                f"all {self.parties} parties joined before this join")
        self.waiters.append((process, ready_ns))

    @property
    def release_ns(self) -> float:
        if not self.complete:
            raise SimulationError("rendezvous not complete yet")
        return max(ready for _, ready in self.waiters)


class SimCore:
    """The simulation: an event queue plus the resources processes share."""

    def __init__(self, queue: EventQueue | None = None,
                 causality: CausalityLog | None = None) -> None:
        # An injectable queue lets the parity suite drive identical runs
        # through the slimmed queue and the reference queue.
        self._queue = EventQueue() if queue is None else queue
        # Opt-in happens-before record; None (the default) keeps the core
        # on its fast path with zero behavioral or allocation change.
        self._causality = causality
        self._rendezvous: dict[Hashable, Rendezvous] = {}
        self.cpu_threads: list[CpuThread] = []
        self.devices: list[GpuDevice] = []
        self.link: LinkResource | None = None
        self.kv_resources: list[KvCacheResource] = []
        self.host_pools: list[CpuPool] = []
        self.now = 0.0
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_cpu_thread(self, name: str = "dispatch") -> CpuThread:
        thread = CpuThread(tid=1 + len(self.cpu_threads), name=name)
        self.cpu_threads.append(thread)
        return thread

    def add_device(self, streams: int = 1, replica: int = 0) -> GpuDevice:
        index = len(self.devices)
        device = GpuDevice(index=index, streams=[
            StreamResource(stream_id=7 + s, device=index,
                           log=self._causality)
            for s in range(max(1, streams))
        ], replica=replica)
        self.devices.append(device)
        return device

    def set_link(self, link: LinkResource) -> LinkResource:
        if self._causality is not None:
            link.log = self._causality
        self.link = link
        return link

    def add_kv_resource(self, resource: KvCacheResource) -> KvCacheResource:
        """Register a KV block pool so processes can acquire/release it.

        Binding gives the resource access to the event queue, which is how
        a release performed by one process wakes the waiters of another.
        """
        resource.bind(self._queue, causality=self._causality)
        self.kv_resources.append(resource)
        return resource

    def add_host_pool(self, pool: CpuPool) -> CpuPool:
        """Register a host CPU pool so processes can book and reserve
        cores on it. Binding mirrors :meth:`add_kv_resource`: the pool
        gets the event queue (reservation releases wake other processes'
        waiters) and the causality log (bookings record ``occupy``
        intervals on ``host.core<i>`` labels)."""
        pool.bind(self._queue, causality=self._causality)
        self.host_pools.append(pool)
        return pool

    def streams(self) -> list[StreamResource]:
        """Every device's compute stream, in device order."""
        return [device.compute_stream for device in self.devices]

    # ------------------------------------------------------------------
    # Rendezvous bookkeeping
    # ------------------------------------------------------------------
    def rendezvous(self, key: Hashable, parties: int) -> Rendezvous:
        """The rendezvous for ``key``, created on first request.

        Every participating process derives the same key from its program
        position (iteration, op index, kernel index), so all parties get the
        same object without any central registration step.
        """
        rdv = self._rendezvous.get(key)
        if rdv is None:
            rdv = Rendezvous(parties, key=key)
            self._rendezvous[key] = rdv
        elif rdv.parties != parties:
            raise SimulationError(f"rendezvous {key!r} party-count mismatch")
        return rdv

    # ------------------------------------------------------------------
    # Process scheduling
    # ------------------------------------------------------------------
    def spawn(self, process: Process, at_ns: float = 0.0) -> None:
        """Schedule ``process`` to start at ``at_ns``."""
        if self._causality is not None:
            self._causality.spawn(process, at_ns)
        self._queue.push(at_ns, process)

    def spawn_all(self, processes: Iterable[Process], at_ns: float = 0.0) -> None:
        for process in processes:
            self.spawn(process, at_ns)

    def run(self) -> None:
        """Drive every process to completion."""
        global EVENTS_TOTAL
        queue = self._queue
        log = self._causality
        processed = 0
        if _HAS_GI_SUSPENDED and type(queue) is EventQueue and log is None:
            # Hot path: drain the heap directly, resume via the generator's
            # own state flag, and inline the overwhelmingly common "at"
            # request. Identical semantics to the generic loop below — the
            # parity suite holds both paths to bit-identical outcomes.
            heap = queue._heap
            heappop = heapq.heappop
            push = queue.push
            handle = self._handle
            while heap:
                time_ns, _, process = heappop(heap)
                # Each process keeps its own monotone clock; global time is
                # the high-water mark. A rendezvous released by a GPU-side
                # ready time can legitimately pop "behind" a CPU clock that
                # ran ahead.
                if time_ns > self.now:
                    self.now = time_ns
                processed += 1
                try:
                    request = (process.send(time_ns) if process.gi_suspended
                               else next(process))
                except StopIteration:
                    continue
                if (type(request) is tuple and len(request) == 2
                        and request[0] == "at"):
                    push(request[1], process)
                else:
                    handle(process, request)
        elif log is None:
            while queue:
                time_ns, process = queue.pop()
                self.now = max(self.now, time_ns)
                processed += 1
                self._step(process, time_ns)
        else:
            # Logging loop: identical scheduling to the generic loop, plus a
            # causality record per pop (with the queue's tie-break sequence)
            # and pid attribution for resources touched between yields.
            while queue:
                time_ns, tie, process = queue.pop_entry()
                self.now = max(self.now, time_ns)
                processed += 1
                log.resume(process, time_ns, tie)
                log.current_pid = log.pid_of(process)
                self._step(process, time_ns)
                log.current_pid = -1
        self.events_processed += processed
        EVENTS_TOTAL += processed
        incomplete = [key for key, rdv in self._rendezvous.items()
                      if not rdv.complete and rdv.waiters]
        if incomplete:
            raise SimulationError(
                f"deadlock: rendezvous never completed: {incomplete[:3]}")
        starved = [resource.name for resource in self.kv_resources
                   if resource.waiters]
        starved += [pool.name for pool in self.host_pools if pool.waiters]
        if starved:
            raise SimulationError(
                f"deadlock: acquisitions never granted on: {starved[:3]}")

    def _step(self, process: Process, resume_ns: float) -> None:
        try:
            if _HAS_GI_SUSPENDED:
                # A just-started generator cannot receive a value; its code
                # up to the first yield runs on this first activation.
                request = (process.send(resume_ns) if process.gi_suspended
                           else next(process))
            elif inspect.getgeneratorstate(process) == inspect.GEN_CREATED:
                request = next(process)
            else:
                request = process.send(resume_ns)
        except StopIteration:
            if self._causality is not None:
                self._causality.exit(process, resume_ns)
            return
        self._handle(process, request)

    def _handle(self, process: Process, request: Any) -> None:
        if not isinstance(request, tuple) or not request:
            raise SimulationError(f"malformed process request: {request!r}")
        log = self._causality
        kind = request[0]
        if kind == "at":
            _, time_ns = request
            if log is not None:
                log.suspend(process, time_ns, "at")
            self._queue.push(time_ns, process)
        elif kind == "join":
            _, rdv, ready_ns = request
            if log is not None:
                log.join(process, rdv.key, rdv.parties, ready_ns)
                log.suspend(process, ready_ns, "join")
            rdv.join(process, ready_ns)
            if rdv.complete:
                release = rdv.release_ns
                if log is not None:
                    log.release(process, rdv.key, rdv.parties, release)
                    for waiter, _ in rdv.waiters:
                        log.wake(waiter, rdv.key, release)
                for waiter, _ in rdv.waiters:
                    self._queue.push(release, waiter)
        elif kind == "acquire":
            _, resource, owner, blocks, ready_ns = request
            if log is not None:
                log.suspend(process, ready_ns, "acquire")
            resource.acquire_request(process, owner, blocks, ready_ns)
        elif kind == "release":
            _, resource, owner, ready_ns = request
            if log is not None:
                log.suspend(process, ready_ns, "release")
            resource.release_request(process, owner, ready_ns)
        else:
            raise SimulationError(f"unknown process request kind: {kind!r}")
