"""Model catalog lookups and groupings."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    ALL_MODELS,
    Arch,
    DECODER_MODELS,
    ENCODER_MODELS,
    PAPER_MODELS,
    SEVEN_B_MODELS,
    get_model,
)


def test_paper_models_match_table3():
    names = [m.name for m in PAPER_MODELS]
    assert names == ["bert-base-uncased", "xlm-roberta-base", "gpt2",
                     "llama-3.2-1b"]


def test_encoder_decoder_split():
    assert all(m.arch is Arch.ENCODER_ONLY for m in ENCODER_MODELS)
    assert all(m.arch is Arch.DECODER_ONLY for m in DECODER_MODELS)


def test_seven_b_models_are_roughly_7b():
    for model in SEVEN_B_MODELS:
        assert 6e9 < model.param_count() < 10e9, model.name


def test_get_model_case_insensitive():
    assert get_model("GPT2").name == "gpt2"
    assert get_model("Llama-3.2-1B").name == "llama-3.2-1b"


def test_get_model_unknown_raises():
    with pytest.raises(ConfigurationError, match="gpt2"):
        get_model("gpt5")


def test_all_model_names_unique():
    names = [m.name for m in ALL_MODELS]
    assert len(names) == len(set(names))


@pytest.mark.parametrize("name,expected_millions,tolerance", [
    ("bert-large-uncased", 335, 0.05),
    ("gpt2-medium", 355, 0.12),
    ("llama-3.2-3b", 3210, 0.08),
    ("qwen2-0.5b", 494, 0.08),
    ("phi-2", 2780, 0.08),
])
def test_extra_models_match_published_sizes(name, expected_millions,
                                            tolerance):
    model = get_model(name)
    assert model.param_count() / 1e6 == pytest.approx(expected_millions,
                                                      rel=tolerance)


def test_extra_models_build_and_lower():
    from repro.engine import kernel_count
    from repro.workloads import EXTRA_MODELS, build_graph
    for model in EXTRA_MODELS:
        graph = build_graph(model, 1, 128)
        assert kernel_count(graph) > 100, model.name
