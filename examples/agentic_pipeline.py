"""Agentic-pipeline latency: how per-stage batching compounds (Section II-A).

Builds a three-stage agent chain — a planner LLM orchestrating a retrieval
summarizer and a responder — and measures end-to-end latency across batch
sizes on a loosely-coupled and a closely-coupled platform. The paper's
motivation: if each stage batches for throughput, the cumulative delay
becomes user-visible.

Usage:
    python examples/agentic_pipeline.py
"""

from repro import GH200, GPT2, INTEL_H100, LLAMA_3_2_1B
from repro.serving import AgenticPipeline, LatencyModel, PipelineStage
from repro.units import ns_to_ms
from repro.viz import render_table

STAGES = [
    PipelineStage("planner", LLAMA_3_2_1B, prompt_len=384, output_tokens=48),
    PipelineStage("summarizer", GPT2, prompt_len=256, output_tokens=64),
    PipelineStage("responder", LLAMA_3_2_1B, prompt_len=192, output_tokens=96),
]

BATCHES = (1, 4, 16)


def main() -> None:
    rows = []
    for platform in (INTEL_H100, GH200):
        pipeline = AgenticPipeline(STAGES, LatencyModel(platform))
        for batch in BATCHES:
            result = pipeline.run(batch_size=batch)
            rows.append([
                platform.name,
                batch,
                f"{ns_to_ms(result.total_ns):.1f}",
                f"{ns_to_ms(result.total_ttft_ns):.1f}",
                result.slowest_stage().stage,
            ])
    print(render_table(
        ["platform", "batch", "end-to-end (ms)", "sum of TTFTs (ms)",
         "slowest stage"],
        rows, title="Three-stage agent chain: planner -> summarizer -> responder"))

    print("\nPer-stage breakdown at BS=1 on each platform:")
    for platform in (INTEL_H100, GH200):
        pipeline = AgenticPipeline(STAGES, LatencyModel(platform))
        result = pipeline.run(batch_size=1)
        parts = ", ".join(f"{s.stage}={ns_to_ms(s.total_ns):.1f}ms"
                          for s in result.stages)
        print(f"  {platform.name:12s} {parts}")

    print("\nTakeaway: at low batch the LC system's stronger CPU wins every")
    print("stage; batching for throughput multiplies the delay by the chain")
    print("depth, which is exactly the paper's latency-sensitivity argument.")


if __name__ == "__main__":
    main()
