"""Speculative decoding latency model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import GH200, INTEL_H100
from repro.serving import LatencyModel
from repro.serving.speculative import (
    SpeculativeConfig,
    speculative_generation_ns,
)
from repro.workloads import GPT2, LLAMA_3_2_1B, QWEN2_0_5B


def test_expected_tokens_formula():
    config = SpeculativeConfig(draft_tokens=4, acceptance_rate=0.7)
    expected = (1 - 0.7 ** 5) / (1 - 0.7)
    assert config.expected_tokens_per_round == pytest.approx(expected)
    assert 1.0 < config.expected_tokens_per_round <= 5.0


def test_higher_acceptance_means_more_tokens_per_round():
    low = SpeculativeConfig(draft_tokens=4, acceptance_rate=0.3)
    high = SpeculativeConfig(draft_tokens=4, acceptance_rate=0.9)
    assert high.expected_tokens_per_round > low.expected_tokens_per_round


def test_speculation_loses_in_dispatch_bound_regime():
    """Eager BS=1 decode is dispatch-bound: a draft pass costs about as much
    CPU as a target pass (it even has more layers here), so speculation
    cannot win — the regime insight the module documents."""
    latency = LatencyModel(GH200)
    result = speculative_generation_ns(
        LLAMA_3_2_1B, QWEN2_0_5B, latency,
        SpeculativeConfig(draft_tokens=4, acceptance_rate=0.75),
        prompt_len=256, output_tokens=64)
    assert result.speedup < 1.0
    assert result.rounds < 64


def test_speculation_wins_under_cuda_graph_decode():
    """With decode captured in CUDA graphs the step cost becomes
    weight-streaming (memory-bound), and a 10x-smaller draft model pays."""
    from repro.engine import ExecutionMode
    latency = LatencyModel(GH200, mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD)
    result = speculative_generation_ns(
        LLAMA_3_2_1B, GPT2, latency,
        SpeculativeConfig(draft_tokens=5, acceptance_rate=0.85),
        prompt_len=256, output_tokens=64)
    assert result.speedup > 1.2


def test_draft_equals_target_is_not_worth_it():
    """Drafting with the target model itself can't win: same step cost plus
    verification overhead."""
    latency = LatencyModel(INTEL_H100)
    result = speculative_generation_ns(
        LLAMA_3_2_1B, LLAMA_3_2_1B, latency,
        SpeculativeConfig(draft_tokens=4, acceptance_rate=0.7))
    assert result.speedup < 1.1


def test_low_acceptance_hurts():
    latency = LatencyModel(GH200)
    good = speculative_generation_ns(
        LLAMA_3_2_1B, GPT2, latency,
        SpeculativeConfig(draft_tokens=4, acceptance_rate=0.8),
        output_tokens=32)
    bad = speculative_generation_ns(
        LLAMA_3_2_1B, GPT2, latency,
        SpeculativeConfig(draft_tokens=4, acceptance_rate=0.1),
        output_tokens=32)
    assert good.speedup > bad.speedup


def test_validation():
    with pytest.raises(ConfigurationError):
        SpeculativeConfig(draft_tokens=0)
    with pytest.raises(ConfigurationError):
        SpeculativeConfig(acceptance_rate=1.0)
    latency = LatencyModel(INTEL_H100)
    with pytest.raises(ConfigurationError):
        speculative_generation_ns(LLAMA_3_2_1B, GPT2, latency,
                                  output_tokens=0)
