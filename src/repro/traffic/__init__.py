"""Traffic generation tier: seeded arrival processes + request tagging.

See :mod:`repro.traffic.arrivals` for the arrival families and
:mod:`repro.traffic.generator` for length/tag sampling. docs/cluster.md
documents the tier in context.
"""

from repro.traffic.arrivals import (
    ArrivalFamily,
    ArrivalSpec,
    arrival_times_ns,
)
from repro.traffic.generator import (
    PrefixSpec,
    TrafficConfig,
    generate_traffic,
    tag_requests,
)

__all__ = [
    "ArrivalFamily",
    "ArrivalSpec",
    "arrival_times_ns",
    "PrefixSpec",
    "TrafficConfig",
    "generate_traffic",
    "tag_requests",
]
