"""Chrome-trace (``chrome://tracing`` JSON) import and export.

PyTorch Profiler emits Chrome traces; exporting our simulated traces in the
same format means SKIP analyses (and external viewers like Perfetto) work
identically on simulated and real traces. Import supports the subset of the
format PyTorch Profiler produces: complete events (``ph: "X"``) with
``cat`` values of ``cpu_op``, ``cuda_runtime`` and ``kernel``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import TraceError
from repro.trace.events import KernelEvent, OperatorEvent, RuntimeEvent
from repro.trace.trace import Trace
from repro.units import NS, US

CAT_OPERATOR = "cpu_op"
CAT_RUNTIME = "cuda_runtime"
CAT_KERNEL = "kernel"
CAT_ITERATION = "user_annotation"
ITERATION_NAME = "ProfilerStep"

#: GPU-side categories PyTorch Profiler emits besides compute kernels; they
#: occupy the stream exactly like kernels and are imported as such.
_GPU_WORK_CATEGORIES = frozenset({CAT_KERNEL, "gpu_memcpy", "gpu_memset"})


def to_chrome_events(trace: Trace) -> list[dict[str, Any]]:
    """Convert a trace to a list of Chrome-trace event dicts.

    Timestamps are emitted in microseconds (the Chrome trace unit). Each
    event also carries exact-nanosecond ``ts_ns``/``dur_ns`` args: the
    ns -> us -> ns conversion costs a float ulp per timestamp, which is
    enough to flip operator-nesting containment at shared boundaries, and
    the round-trip tests require bit-identical SKIP metrics. Real profiler
    traces omit the sidecar; the importer falls back to the us fields.

    The emitted list is canonically ordered — stable-sorted by exact begin
    timestamp, then correlation id (sequence number for operators) — so
    exports are byte-reproducible for identical traces and golden diffs
    and the trace linter (rule T001) can rely on file order.
    """
    keyed: list[tuple[tuple[float, float], dict[str, Any]]] = []
    for op in trace.operators:
        keyed.append(
            ((op.ts, float(op.seq)),
             {
                "name": op.name,
                "cat": CAT_OPERATOR,
                "ph": "X",
                "ts": op.ts / US,
                "dur": op.dur / US,
                "pid": 0,
                "tid": op.tid,
                "args": {"Sequence number": op.seq,
                         "ts_ns": op.ts, "dur_ns": op.dur},
             })
        )
    for call in trace.runtime_calls:
        keyed.append(
            ((call.ts, float(call.correlation_id)),
             {
                "name": call.name,
                "cat": CAT_RUNTIME,
                "ph": "X",
                "ts": call.ts / US,
                "dur": call.dur / US,
                "pid": 0,
                "tid": call.tid,
                "args": {"correlation": call.correlation_id,
                         "ts_ns": call.ts, "dur_ns": call.dur},
             })
        )
    for kernel in trace.kernels:
        args: dict[str, Any] = {
            "correlation": kernel.correlation_id,
            "stream": kernel.stream,
            "device": kernel.device,
            "ts_ns": kernel.ts,
            "dur_ns": kernel.dur,
        }
        # Simulator-only roofline annotations; real profiler traces omit
        # them, and the importer tolerates their absence.
        if kernel.flops:
            args["flops"] = kernel.flops
        if kernel.bytes_moved:
            args["bytes_moved"] = kernel.bytes_moved
        keyed.append(
            ((kernel.ts, float(kernel.correlation_id)),
             {
                "name": kernel.name,
                "cat": CAT_KERNEL,
                "ph": "X",
                "ts": kernel.ts / US,
                "dur": kernel.dur / US,
                "pid": 1,
                "tid": kernel.stream,
                "args": args,
             })
        )
    for mark in trace.iterations:
        keyed.append(
            ((mark.ts, float(mark.index)),
             {
                "name": f"{ITERATION_NAME}#{mark.index}",
                "cat": CAT_ITERATION,
                "ph": "X",
                "ts": mark.ts / US,
                "dur": (mark.ts_end - mark.ts) / US,
                "pid": 0,
                "tid": 0,
                "args": {"ts_ns": mark.ts, "dur_ns": mark.ts_end - mark.ts},
             })
        )
    keyed.sort(key=lambda pair: pair[0])
    return [event for _, event in keyed]


def _payload(trace: Trace) -> dict[str, Any]:
    return {
        "traceEvents": to_chrome_events(trace),
        "metadata": dict(trace.metadata),
        "displayTimeUnit": "ms",
    }


def dump(trace: Trace, path: str | Path) -> None:
    """Write a trace as Chrome-trace JSON to ``path``."""
    Path(path).write_text(json.dumps(_payload(trace)))


def dumps(trace: Trace) -> str:
    """Serialize a trace to a Chrome-trace JSON string."""
    return json.dumps(_payload(trace))


def _parse_event(raw: dict[str, Any], trace: Trace) -> None:
    if raw.get("ph") != "X":
        return
    cat = raw.get("cat", "")
    name = raw.get("name", "")
    tid = int(raw.get("tid", 0))
    args = raw.get("args", {}) or {}
    # Prefer the simulator's exact-ns sidecar; real profiler traces only
    # have the microsecond fields.
    if "ts_ns" in args:
        ts = float(args["ts_ns"])
        dur = float(args.get("dur_ns", 0.0))
    else:
        ts = float(raw.get("ts", 0.0)) * US / NS
        dur = float(raw.get("dur", 0.0)) * US / NS
    if cat == CAT_OPERATOR:
        trace.add(OperatorEvent(name=name, ts=ts, dur=dur, tid=tid,
                                seq=int(args.get("Sequence number", -1))))
    elif cat == CAT_RUNTIME:
        trace.add(RuntimeEvent(name=name, ts=ts, dur=dur, tid=tid,
                               correlation_id=int(args.get("correlation", -1))))
    elif cat in _GPU_WORK_CATEGORIES:
        trace.add(
            KernelEvent(
                name=name,
                ts=ts,
                dur=dur,
                tid=0,
                correlation_id=int(args.get("correlation", -1)),
                stream=int(args.get("stream", tid)),
                device=int(args.get("device", 0)),
                flops=float(args.get("flops", 0.0)),
                bytes_moved=float(args.get("bytes_moved", 0.0)),
            )
        )
    elif cat == CAT_ITERATION and name.startswith(ITERATION_NAME):
        trace.mark_iteration(ts, ts + dur)


def loads(text: str) -> Trace:
    """Parse a Chrome-trace JSON string into a :class:`Trace`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceError(f"invalid chrome trace JSON: {exc}") from exc
    if isinstance(payload, list):
        raw_events = payload
        metadata: dict[str, Any] = {}
    elif isinstance(payload, dict):
        raw_events = payload.get("traceEvents", [])
        metadata = payload.get("metadata", {}) or {}
    else:
        raise TraceError("chrome trace must be a JSON list or object")
    trace = Trace(metadata=metadata)
    for raw in raw_events:
        if isinstance(raw, dict):
            _parse_event(raw, trace)
    trace.sort()
    # Re-number iterations after sorting to keep indices monotonic in time.
    for index, mark in enumerate(trace.iterations):
        mark.index = index
    return trace


def load(path: str | Path) -> Trace:
    """Read a Chrome-trace JSON file into a :class:`Trace`."""
    return loads(Path(path).read_text())
