"""Model catalog: the paper's four benchmark LLMs plus context models.

Table III of the paper benchmarks BERT-base, XLM-RoBERTa-base, GPT-2 and
Llama-3.2-1B. Table I uses Gemma-2B and Fig. 3 uses "popular 7B decoder
models"; we include representative 7B configs for that experiment.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.workloads.config import Activation, Arch, ModelConfig, Norm, Positional

# ---------------------------------------------------------------------------
# Table III workloads
# ---------------------------------------------------------------------------

BERT_BASE = ModelConfig(
    name="bert-base-uncased",
    arch=Arch.ENCODER_ONLY,
    hidden=768,
    layers=12,
    heads=12,
    intermediate=3072,
    vocab=30522,
    max_positions=512,
    has_pooler=True,
)

XLM_ROBERTA_BASE = ModelConfig(
    name="xlm-roberta-base",
    arch=Arch.ENCODER_ONLY,
    hidden=768,
    layers=12,
    heads=12,
    intermediate=3072,
    vocab=250002,  # the large multilingual vocabulary is why XLM-R is 279M
    max_positions=512,
    has_pooler=True,
)

GPT2 = ModelConfig(
    name="gpt2",
    arch=Arch.DECODER_ONLY,
    hidden=768,
    layers=12,
    heads=12,
    intermediate=3072,
    vocab=50257,
    max_positions=1024,
    fused_qkv=True,  # GPT-2's Conv1D c_attn: one GEMM + split
)

LLAMA_3_2_1B = ModelConfig(
    name="llama-3.2-1b",
    arch=Arch.DECODER_ONLY,
    hidden=2048,
    layers=16,
    heads=32,
    kv_heads=8,
    intermediate=8192,
    vocab=128256,
    max_positions=8192,
    norm=Norm.RMSNORM,
    activation=Activation.SILU,
    positional=Positional.ROPE,
    attention_bias=False,
    mlp_bias=False,
)

# ---------------------------------------------------------------------------
# Catalog breadth beyond the paper's benchmark set
# ---------------------------------------------------------------------------

BERT_LARGE = ModelConfig(
    name="bert-large-uncased",
    arch=Arch.ENCODER_ONLY,
    hidden=1024,
    layers=24,
    heads=16,
    intermediate=4096,
    vocab=30522,
    max_positions=512,
    has_pooler=True,
)

GPT2_MEDIUM = ModelConfig(
    name="gpt2-medium",
    arch=Arch.DECODER_ONLY,
    hidden=1024,
    layers=24,
    heads=16,
    intermediate=4096,
    vocab=50257,
    max_positions=1024,
    fused_qkv=True,
)

LLAMA_3_2_3B = ModelConfig(
    name="llama-3.2-3b",
    arch=Arch.DECODER_ONLY,
    hidden=3072,
    layers=28,
    heads=24,
    kv_heads=8,
    intermediate=8192,
    vocab=128256,
    max_positions=8192,
    norm=Norm.RMSNORM,
    activation=Activation.SILU,
    positional=Positional.ROPE,
    attention_bias=False,
    mlp_bias=False,
)

QWEN2_0_5B = ModelConfig(
    name="qwen2-0.5b",
    arch=Arch.DECODER_ONLY,
    hidden=896,
    layers=24,
    heads=14,
    kv_heads=2,
    intermediate=4864,
    vocab=151936,
    max_positions=32768,
    norm=Norm.RMSNORM,
    activation=Activation.SILU,
    positional=Positional.ROPE,
    attention_bias=True,
    mlp_bias=False,
)

PHI_2 = ModelConfig(
    name="phi-2",
    arch=Arch.DECODER_ONLY,
    hidden=2560,
    layers=32,
    heads=32,
    intermediate=10240,
    vocab=51200,
    max_positions=2048,
    positional=Positional.ROPE,
    tie_embeddings=False,
)

# ---------------------------------------------------------------------------
# Context-experiment models (Table I, Fig. 3)
# ---------------------------------------------------------------------------

GEMMA_2B = ModelConfig(
    name="gemma-2b",
    arch=Arch.DECODER_ONLY,
    hidden=2048,
    layers=18,
    heads=8,
    kv_heads=1,
    head_dim=256,
    intermediate=16384,
    vocab=256000,
    max_positions=8192,
    norm=Norm.RMSNORM,
    activation=Activation.GEGLU,
    positional=Positional.ROPE,
    attention_bias=False,
    mlp_bias=False,
)

LLAMA_2_7B = ModelConfig(
    name="llama-2-7b",
    arch=Arch.DECODER_ONLY,
    hidden=4096,
    layers=32,
    heads=32,
    intermediate=11008,
    vocab=32000,
    max_positions=4096,
    norm=Norm.RMSNORM,
    activation=Activation.SILU,
    positional=Positional.ROPE,
    attention_bias=False,
    mlp_bias=False,
    tie_embeddings=False,
)

MISTRAL_7B = ModelConfig(
    name="mistral-7b",
    arch=Arch.DECODER_ONLY,
    hidden=4096,
    layers=32,
    heads=32,
    kv_heads=8,
    intermediate=14336,
    vocab=32000,
    max_positions=8192,
    norm=Norm.RMSNORM,
    activation=Activation.SILU,
    positional=Positional.ROPE,
    attention_bias=False,
    mlp_bias=False,
    tie_embeddings=False,
)

QWEN_7B = ModelConfig(
    name="qwen1.5-7b",
    arch=Arch.DECODER_ONLY,
    hidden=4096,
    layers=32,
    heads=32,
    intermediate=11008,
    vocab=151936,
    max_positions=8192,
    norm=Norm.RMSNORM,
    activation=Activation.SILU,
    positional=Positional.ROPE,
    attention_bias=True,  # Qwen keeps QKV bias
    mlp_bias=False,
    tie_embeddings=False,
)

GEMMA_7B = ModelConfig(
    name="gemma-7b",
    arch=Arch.DECODER_ONLY,
    hidden=3072,
    layers=28,
    heads=16,
    head_dim=256,
    intermediate=24576,
    vocab=256000,
    max_positions=8192,
    norm=Norm.RMSNORM,
    activation=Activation.GEGLU,
    positional=Positional.ROPE,
    attention_bias=False,
    mlp_bias=False,
)

#: The paper's Table III benchmark set.
PAPER_MODELS: tuple[ModelConfig, ...] = (BERT_BASE, XLM_ROBERTA_BASE, GPT2, LLAMA_3_2_1B)

#: Encoder / decoder groupings used by the figure benches.
ENCODER_MODELS: tuple[ModelConfig, ...] = (BERT_BASE, XLM_ROBERTA_BASE)
DECODER_MODELS: tuple[ModelConfig, ...] = (GPT2, LLAMA_3_2_1B)

#: Fig. 3's "popular 7B decoder models".
SEVEN_B_MODELS: tuple[ModelConfig, ...] = (LLAMA_2_7B, MISTRAL_7B, QWEN_7B, GEMMA_7B)

MIXTRAL_8X7B = ModelConfig(
    name="mixtral-8x7b",
    arch=Arch.DECODER_ONLY,
    hidden=4096,
    layers=32,
    heads=32,
    kv_heads=8,
    intermediate=14336,
    vocab=32000,
    max_positions=32768,
    norm=Norm.RMSNORM,
    activation=Activation.SILU,
    positional=Positional.ROPE,
    attention_bias=False,
    mlp_bias=False,
    tie_embeddings=False,
    moe_experts=8,
    moe_top_k=2,
)

#: Catalog entries beyond the paper's experiments.
EXTRA_MODELS: tuple[ModelConfig, ...] = (
    BERT_LARGE, GPT2_MEDIUM, LLAMA_3_2_3B, QWEN2_0_5B, PHI_2, MIXTRAL_8X7B,
)

ALL_MODELS: tuple[ModelConfig, ...] = (
    *PAPER_MODELS,
    GEMMA_2B,
    *SEVEN_B_MODELS,
    *EXTRA_MODELS,
)

_BY_NAME = {m.name.lower(): m for m in ALL_MODELS}


def get_model(name: str) -> ModelConfig:
    """Look up a model by name (case-insensitive).

    Raises:
        ConfigurationError: if the name is unknown.
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(m.name for m in ALL_MODELS))
        raise ConfigurationError(f"unknown model {name!r}; known: {known}") from None
