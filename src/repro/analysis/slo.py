"""SLO-aware batch/platform advisor.

Section II-A: system-level objectives constrain latency to ~200 ms for a
good user experience, while larger batches buy throughput. The advisor
finds, per platform, the largest batch whose TTFT stays within the SLO, and
ranks platforms by the throughput they achieve inside it — the paper's
"operate in the balanced region" recommendation made actionable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.sweep import SweepResult
from repro.errors import AnalysisError
from repro.units import ms_to_ns

#: The paper's quoted interactive-serving latency budget.
DEFAULT_SLO_MS = 200.0


@dataclass(frozen=True)
class SloPoint:
    """Best SLO-compliant operating point for one platform."""

    platform: str
    batch_size: int | None        # None when even BS=1 misses the SLO
    ttft_ns: float | None
    tokens_per_second: float      # prefill tokens/s at the chosen batch

    @property
    def meets_slo(self) -> bool:
        return self.batch_size is not None


@dataclass(frozen=True)
class SloReport:
    """SLO analysis across platforms for one sweep."""

    slo_ns: float
    seq_len: int
    points: tuple[SloPoint, ...]

    def best(self) -> SloPoint:
        """The platform with the highest SLO-compliant throughput."""
        compliant = [p for p in self.points if p.meets_slo]
        if not compliant:
            raise AnalysisError("no platform meets the SLO at any swept batch")
        return max(compliant, key=lambda p: p.tokens_per_second)


def advise(sweep: SweepResult, seq_len: int,
           slo_ms: float = DEFAULT_SLO_MS,
           platforms: Sequence[str] | None = None) -> SloReport:
    """Pick the largest SLO-compliant batch per platform from a sweep.

    Args:
        sweep: A completed prefill batch sweep.
        seq_len: Sequence length the sweep used (for token accounting).
        slo_ms: TTFT budget in milliseconds.
        platforms: Platforms to rank (default: all in the sweep).
    """
    if slo_ms <= 0:
        raise AnalysisError("slo_ms must be positive")
    if seq_len <= 0:
        raise AnalysisError("seq_len must be positive")
    slo_ns = ms_to_ns(slo_ms)
    names = list(platforms) if platforms is not None else sweep.platforms()
    points = []
    for name in names:
        best_batch = None
        best_ttft = None
        for batch in sweep.batch_sizes:
            ttft = sweep.point(name, batch).ttft_ns
            if ttft <= slo_ns:
                best_batch, best_ttft = batch, ttft
        if best_batch is None:
            points.append(SloPoint(name, None, None, 0.0))
        else:
            throughput = best_batch * seq_len / (best_ttft / 1e9)
            points.append(SloPoint(name, best_batch, best_ttft, throughput))
    return SloReport(slo_ns=slo_ns, seq_len=seq_len, points=tuple(points))
