"""Chrome-trace export / import round trips."""

import json

import pytest

from repro.engine import run
from repro.errors import TraceError
from repro.hardware import INTEL_H100
from repro.trace import chrome
from repro.workloads import BERT_BASE


@pytest.fixture(scope="module")
def run_trace():
    from repro.engine import EngineConfig
    return run(BERT_BASE, INTEL_H100, batch_size=1,
               config=EngineConfig(iterations=2)).trace


def test_round_trip_preserves_event_counts(run_trace):
    text = chrome.dumps(run_trace)
    loaded = chrome.loads(text)
    assert len(loaded.operators) == len(run_trace.operators)
    assert len(loaded.runtime_calls) == len(run_trace.runtime_calls)
    assert len(loaded.kernels) == len(run_trace.kernels)
    assert len(loaded.iterations) == len(run_trace.iterations)


def test_round_trip_preserves_correlations(run_trace):
    loaded = chrome.loads(chrome.dumps(run_trace))
    original = {k.correlation_id for k in run_trace.kernels}
    recovered = {k.correlation_id for k in loaded.kernels}
    assert original == recovered


def test_round_trip_timestamps_close(run_trace):
    loaded = chrome.loads(chrome.dumps(run_trace))
    first_orig = min(k.ts for k in run_trace.kernels)
    first_loaded = min(k.ts for k in loaded.kernels)
    assert first_loaded == pytest.approx(first_orig, abs=1.0)


def test_dump_and_load_file(tmp_path, run_trace):
    path = tmp_path / "trace.json"
    chrome.dump(run_trace, path)
    loaded = chrome.load(path)
    assert len(loaded.kernels) == len(run_trace.kernels)


def test_metadata_round_trip(run_trace):
    loaded = chrome.loads(chrome.dumps(run_trace))
    assert loaded.metadata["platform"] == "Intel+H100"


def test_loads_accepts_bare_event_list():
    events = [{
        "name": "aten::add", "cat": "cpu_op", "ph": "X",
        "ts": 1.0, "dur": 2.0, "pid": 0, "tid": 1, "args": {},
    }]
    trace = chrome.loads(json.dumps(events))
    assert len(trace.operators) == 1


def test_loads_rejects_invalid_json():
    with pytest.raises(TraceError):
        chrome.loads("{not json")


def test_loads_rejects_wrong_top_level():
    with pytest.raises(TraceError):
        chrome.loads('"a string"')


def test_loads_gpu_memcpy_as_gpu_work():
    """PyTorch Profiler emits gpu_memcpy/gpu_memset events; they occupy the
    stream and import as kernel events."""
    events = [
        {"ph": "X", "cat": "gpu_memcpy", "name": "Memcpy HtoD", "ts": 1.0,
         "dur": 2.0, "tid": 7, "args": {"correlation": 5}},
        {"ph": "X", "cat": "gpu_memset", "name": "Memset", "ts": 4.0,
         "dur": 1.0, "tid": 7, "args": {"correlation": 6}},
    ]
    trace = chrome.loads(json.dumps(events))
    assert len(trace.kernels) == 2
    assert {k.name for k in trace.kernels} == {"Memcpy HtoD", "Memset"}


def test_loads_ignores_unknown_categories():
    events = [{"name": "x", "cat": "python_function", "ph": "X",
               "ts": 0, "dur": 1, "tid": 0}]
    trace = chrome.loads(json.dumps(events))
    assert not trace.operators and not trace.kernels


def test_analysis_on_imported_trace(run_trace):
    """SKIP analyses must work identically on an imported Chrome trace."""
    from repro.skip import SkipProfiler, compute_metrics
    loaded = chrome.loads(chrome.dumps(run_trace))
    original = compute_metrics(run_trace)
    imported = compute_metrics(loaded)
    assert imported.tklqt_ns == pytest.approx(original.tklqt_ns, rel=1e-6)
    assert imported.kernel_launches == original.kernel_launches
    result = SkipProfiler.analyze(loaded)
    assert result.boundedness == SkipProfiler.analyze(run_trace).boundedness
