"""repro.host — finite-host CPU contention for multi-replica serving.

The subsystem that answers "how many replicas per host?": host cores are
a finite, NUMA-structured simulation resource
(:class:`~repro.host.pool.CpuPool`) that replicas, the cluster router,
and KV swap bookkeeping all book dispatch work on. Topology comes from
the hardware catalog (:mod:`repro.hardware.host`); the wiring into a
serving run is :class:`~repro.host.model.HostModel`. See docs/host.md.
"""

from repro.host.model import HostConfig, HostModel, HostStats
from repro.host.pool import CoreGrant, CpuCore, CpuPool, pool_from_domains

__all__ = [
    "CoreGrant",
    "CpuCore",
    "CpuPool",
    "HostConfig",
    "HostModel",
    "HostStats",
    "pool_from_domains",
]
