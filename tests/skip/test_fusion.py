"""Fusion recommendation and idealized speedups (Eqs. 7-8)."""

import pytest

from repro.errors import AnalysisError
from repro.skip import analyze_segments, analyze_trace, best_speedup, combined_plan
from repro.skip.fusion import DEFAULT_CHAIN_LENGTHS


def test_eq7_eq8_hand_check():
    # One deterministic pair occurring 3x in a 10-kernel segment.
    segment = ["x0", "a", "b", "x1", "a", "b", "x2", "a", "b", "x3"]
    analyses = analyze_segments([segment], lengths=[2])
    a = analyses[0]
    assert a.k_eager == 10
    assert a.fused_chain_count >= 1
    # Eq. 7 counts distinct chains: K_fused = 10 - C * (2-1).
    assert a.k_fused == a.k_eager - a.fused_chain_count
    assert a.ideal_speedup == pytest.approx(a.k_eager / a.k_fused)


def test_instance_accounting_extension():
    # (a, b) is deterministic and occurs twice; Eq. 7 counts it once
    # (distinct chains) while the instance extension counts both.
    segment = ["a", "b", "a", "b"]
    a = analyze_segments([segment], lengths=[2])[0]
    assert a.fused_chain_count == 1.0
    assert a.fused_instances == 2.0
    assert a.k_fused == 3
    assert a.instance_k_fused == 2
    assert a.instance_speedup > a.ideal_speedup


def test_gpt2_speedup_curve_matches_paper_shape(gpt2_profile):
    """Paper Fig. 8: modest speedups at short chains, up to ~2.7x at L=256."""
    analyses = analyze_trace(gpt2_profile.trace)
    speedups = {a.length: a.ideal_speedup for a in analyses}
    assert 1.0 < speedups[2] < 1.15
    assert speedups[256] == pytest.approx(2.7, rel=0.15)
    assert speedups[256] > speedups[2]


def test_xlmr_speedup_matches_paper(xlmr_profile):
    """Paper: up to ~6.8x for XLM-RoBERTa at L=256."""
    analyses = analyze_trace(xlmr_profile.trace)
    best = best_speedup(analyses)
    assert best.length == 256
    assert best.ideal_speedup == pytest.approx(6.8, rel=0.15)


def test_unique_candidates_stabilize_with_length(gpt2_profile):
    """Paper Fig. 7a: short lengths show more unique candidates; counts
    stabilize as L grows."""
    analyses = analyze_trace(gpt2_profile.trace)
    unique = [a.unique_candidates for a in analyses]
    assert unique[0] < unique[-1] or unique[-2] == unique[-1]


def test_total_instances_decrease_with_length(gpt2_profile):
    """Paper Fig. 7b: total instances shrink as chains lengthen."""
    analyses = analyze_trace(gpt2_profile.trace)
    totals = [a.total_instances for a in analyses]
    assert totals == sorted(totals, reverse=True)


def test_long_chain_fusions_are_few(gpt2_profile):
    """Paper Fig. 7c: at long lengths only a few non-overlapping chains."""
    analyses = {a.length: a for a in analyze_trace(gpt2_profile.trace)}
    assert analyses[256].fused_chain_count <= 3
    assert analyses[2].fused_chain_count > analyses[256].fused_chain_count


def test_kernels_fused_is_c_times_l(gpt2_profile):
    for a in analyze_trace(gpt2_profile.trace):
        assert a.kernels_fused == pytest.approx(a.fused_chain_count * a.length)


def test_plan_export(gpt2_profile):
    analyses = analyze_trace(gpt2_profile.trace, lengths=[8])
    plan = analyses[0].plan()
    assert plan is not None
    assert all(len(chain) == 8 for chain in plan.chains)


def test_plan_none_when_no_deterministic_chains():
    # Both length-3 windows of "a b a b" have PS = 0.5.
    a = analyze_segments([["a", "b", "a", "b"]], lengths=[3])[0]
    assert a.plan() is None


def test_combined_plan_dedupes_and_prefers_long(gpt2_profile):
    analyses = analyze_trace(gpt2_profile.trace, lengths=[2, 8])
    plan = combined_plan(analyses)
    assert plan is not None
    lengths = [len(c) for c in plan.chains]
    assert lengths[0] == 8  # longest first
    assert len(set(plan.chains)) == len(plan.chains)


def test_combined_plan_respects_max_chains(gpt2_profile):
    analyses = analyze_trace(gpt2_profile.trace, lengths=[2, 4, 8])
    plan = combined_plan(analyses, max_chains=3)
    assert plan is not None and len(plan.chains) <= 3


def test_default_lengths_are_the_paper_ladder():
    assert DEFAULT_CHAIN_LENGTHS == (2, 4, 8, 16, 32, 64, 128, 256)


def test_empty_input_rejected():
    with pytest.raises(AnalysisError):
        analyze_segments([])
    with pytest.raises(AnalysisError):
        best_speedup([])


def test_k_fused_positive_invariant(gpt2_profile, xlmr_profile):
    for profile in (gpt2_profile, xlmr_profile):
        for a in analyze_trace(profile.trace):
            assert a.k_fused > 0
            assert a.instance_k_fused > 0
