"""Shared fixtures.

Engine runs are deterministic and cheap, but sweeps over many batch sizes add
up; session-scoped fixtures cache the expensive sweeps used by several test
modules.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_batch_sweep
from repro.engine import EngineConfig
from repro.hardware import AMD_A100, GH200, INTEL_H100
from repro.skip import SkipProfiler
from repro.workloads import BERT_BASE, GPT2, LLAMA_3_2_1B, XLM_ROBERTA_BASE

#: Batch ladder used by the calibration-anchor tests.
SWEEP_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate tests/golden/data/*.json from the current "
             "simulator output instead of comparing against it")


@pytest.fixture(scope="session")
def fast_engine_config() -> EngineConfig:
    """Single-iteration engine config for tests that don't mine chains."""
    return EngineConfig(iterations=1)


@pytest.fixture(scope="session")
def intel_profiler() -> SkipProfiler:
    return SkipProfiler(INTEL_H100)


@pytest.fixture(scope="session")
def gh200_profiler() -> SkipProfiler:
    return SkipProfiler(GH200)


@pytest.fixture(scope="session")
def bert_sweep():
    """BERT prefill sweep on all three paper platforms."""
    return run_batch_sweep(BERT_BASE, (INTEL_H100, AMD_A100, GH200),
                           SWEEP_BATCHES,
                           engine_config=EngineConfig(iterations=1))


@pytest.fixture(scope="session")
def llama_sweep():
    """Llama-3.2-1B prefill sweep on all three paper platforms."""
    return run_batch_sweep(LLAMA_3_2_1B, (INTEL_H100, AMD_A100, GH200),
                           SWEEP_BATCHES,
                           engine_config=EngineConfig(iterations=1))


@pytest.fixture(scope="session")
def gpt2_profile(intel_profiler):
    """GPT-2 BS=1 eager profile on Intel+H100 (fusion-analysis workhorse)."""
    return intel_profiler.profile(GPT2, batch_size=1, seq_len=512)


@pytest.fixture(scope="session")
def xlmr_profile(intel_profiler):
    """XLM-R BS=1 eager profile on Intel+H100."""
    return intel_profiler.profile(XLM_ROBERTA_BASE, batch_size=1, seq_len=512)
