"""K-rules: each corruption of a KV event log pins exactly its rule."""

import pytest

from repro.check import check_kv_events, check_kv_metadata
from repro.errors import AnalysisError
from repro.kvcache import KvCacheEvent

CAPACITY = 10


def ev(kind, seq, blocks, allocated, ts=0.0, replica=0):
    return KvCacheEvent(ts_ns=ts, kind=kind, seq=seq, blocks=blocks,
                        allocated=allocated, replica=replica)


def _rule_ids(findings):
    return {f.rule_id for f in findings}


CLEAN = [
    ev("alloc", 1, 4, 4),
    ev("grow", 1, 1, 5),
    ev("alloc", 2, 4, 9),
    ev("decode", 1, 0, 9),
    ev("swap_out", 2, 4, 5),
    ev("decode", 1, 0, 5),
    ev("swap_in", 2, 4, 9),
    ev("preempt", 2, 4, 5),
    ev("free", 1, 5, 0),
]


def test_clean_log_has_no_findings():
    assert check_kv_events(CLEAN, CAPACITY) == []
    assert check_kv_events([], CAPACITY) == []


def test_k001_leaked_device_blocks():
    findings = check_kv_events([ev("alloc", 1, 4, 4)], CAPACITY)
    assert _rule_ids(findings) == {"K001"}
    assert "leaked" in findings[0].message


def test_k001_blocks_stranded_in_host_memory():
    log = [ev("alloc", 1, 4, 4), ev("swap_out", 1, 4, 0)]
    findings = check_kv_events(log, CAPACITY)
    assert _rule_ids(findings) == {"K001"}
    assert "host memory" in findings[0].message


def test_k002_allocated_exceeds_capacity():
    log = [ev("alloc", 1, 12, 12), ev("free", 1, 12, 0)]
    findings = check_kv_events(log, CAPACITY)
    assert "K002" in _rule_ids(findings)
    # Without a registered capacity the same log is fine.
    assert check_kv_events(log, None) == []


def test_k002_recorded_counter_disagrees_with_replay():
    log = [ev("alloc", 1, 4, 5), ev("free", 1, 4, 1)]
    findings = check_kv_events(log, CAPACITY)
    assert _rule_ids(findings) == {"K002"}


def test_k002_free_does_not_match_held_blocks():
    log = [ev("alloc", 1, 4, 4), ev("free", 1, 3, 0)]
    findings = check_kv_events(log, CAPACITY)
    assert "K002" in _rule_ids(findings)


def test_k002_swap_in_without_swap_out():
    log = [ev("swap_in", 1, 4, 4), ev("free", 1, 4, 0)]
    findings = check_kv_events(log, CAPACITY)
    assert _rule_ids(findings) == {"K002"}


def test_k002_swap_out_of_empty_sequence():
    findings = check_kv_events([ev("swap_out", 1, 4, 0)], CAPACITY)
    assert "K002" in _rule_ids(findings)


def test_k003_decode_while_swapped_out():
    log = [
        ev("alloc", 1, 4, 4),
        ev("swap_out", 1, 4, 0),
        ev("decode", 1, 0, 0),
        ev("swap_in", 1, 4, 4),
        ev("free", 1, 4, 0),
    ]
    findings = check_kv_events(log, CAPACITY)
    assert _rule_ids(findings) == {"K003"}
    assert "swap-in must precede" in findings[0].message


def test_k003_decode_with_no_blocks_at_all():
    findings = check_kv_events([ev("decode", 1, 0, 0)], CAPACITY)
    assert _rule_ids(findings) == {"K003"}


def test_k004_realloc_without_free():
    log = [ev("alloc", 1, 4, 4), ev("alloc", 1, 2, 6), ev("free", 1, 6, 0)]
    findings = check_kv_events(log, CAPACITY)
    assert _rule_ids(findings) == {"K004"}


def test_k004_alloc_while_blocks_sit_in_host_memory():
    log = [
        ev("alloc", 1, 4, 4),
        ev("swap_out", 1, 4, 0),
        ev("alloc", 1, 4, 4),
        ev("free", 1, 4, 0),
    ]
    findings = check_kv_events(log, CAPACITY)
    assert _rule_ids(findings) == {"K001", "K004"}  # host copy also strands


def test_k004_grow_without_alloc():
    log = [ev("grow", 1, 2, 2), ev("free", 1, 2, 0)]
    findings = check_kv_events(log, CAPACITY)
    assert _rule_ids(findings) == {"K004"}


def test_metadata_replay_is_per_replica():
    meta = {
        "pools": {"0": {"capacity_blocks": CAPACITY},
                  "1": {"capacity_blocks": 2}},
        "events": [ev("alloc", 1, 4, 4, replica=0).to_dict(),
                   ev("free", 1, 4, 0, replica=0).to_dict(),
                   ev("alloc", 2, 4, 4, replica=1).to_dict(),
                   ev("free", 2, 4, 0, replica=1).to_dict()],
    }
    findings = check_kv_metadata(meta)
    # Replica 1's pool holds 2 blocks, so its alloc of 4 over-commits;
    # replica 0 is clean.
    assert _rule_ids(findings) == {"K002"}
    assert all("replica 1" in f.location for f in findings)


def test_metadata_events_without_a_pool_are_flagged():
    meta = {"pools": {},
            "events": [ev("alloc", 1, 4, 4).to_dict(),
                       ev("free", 1, 4, 0).to_dict()]}
    findings = check_kv_metadata(meta)
    assert "K002" in _rule_ids(findings)
    assert any("no pool was registered" in f.message for f in findings)


def test_malformed_event_payload_raises():
    with pytest.raises(AnalysisError, match="malformed kv event"):
        check_kv_metadata({"pools": {}, "events": [{"kind": "alloc"}]})
    with pytest.raises(AnalysisError, match="unknown kv event kind"):
        ev("teleport", 1, 1, 1)
