"""Counters and weighted histograms for the observability layer.

The serving simulations are single-threaded and deterministic, so the
implementations favour simplicity: a histogram keeps its raw (value, weight)
observations and computes weighted nearest-rank percentiles on demand. At
simulation scale (thousands of steps) this is far below the cost of a single
engine run, which keeps the recorder's overhead negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError


@dataclass(frozen=True)
class HistogramSummary:
    """Point-in-time summary of one histogram."""

    name: str
    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float


@dataclass
class Histogram:
    """A weighted histogram of float observations.

    ``observe(value, count)`` records ``count`` occurrences of ``value`` in
    O(1); percentiles sort lazily. Weights let per-step observations stand in
    for per-request ones (a decode step contributes one time-between-tokens
    sample per active sequence).
    """

    name: str
    _values: list[float] = field(default_factory=list, repr=False)
    _weights: list[float] = field(default_factory=list, repr=False)

    def observe(self, value: float, count: float = 1.0) -> None:
        if count <= 0:
            raise AnalysisError(f"histogram {self.name}: count must be positive")
        self._values.append(float(value))
        self._weights.append(float(count))

    @property
    def count(self) -> float:
        return sum(self._weights)

    @property
    def empty(self) -> bool:
        return not self._values

    def mean(self) -> float:
        if self.empty:
            raise AnalysisError(f"histogram {self.name} is empty")
        total = sum(v * w for v, w in zip(self._values, self._weights))
        return total / self.count

    def percentile(self, p: float) -> float:
        """Weighted nearest-rank percentile; ``p`` in [0, 100]."""
        if not (0.0 <= p <= 100.0):
            raise AnalysisError("percentile must be in [0, 100]")
        if self.empty:
            raise AnalysisError(f"histogram {self.name} is empty")
        pairs = sorted(zip(self._values, self._weights))
        total = sum(w for _, w in pairs)
        rank = p / 100.0 * total
        cumulative = 0.0
        for value, weight in pairs:
            cumulative += weight
            if cumulative >= rank:
                return value
        return pairs[-1][0]

    def summary(self) -> HistogramSummary:
        return HistogramSummary(
            name=self.name,
            count=int(self.count),
            mean=self.mean(),
            minimum=min(self._values),
            maximum=max(self._values),
            p50=self.percentile(50),
            p90=self.percentile(90),
            p99=self.percentile(99),
        )


@dataclass
class CounterSet:
    """A named set of monotonically increasing counters."""

    _counts: dict[str, float] = field(default_factory=dict, repr=False)

    def add(self, name: str, amount: float = 1.0) -> None:
        if amount < 0:
            raise AnalysisError(f"counter {name}: amount must be non-negative")
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def as_dict(self) -> dict[str, float]:
        return dict(self._counts)
