"""Graph verifier: static checks over lowered kernel graphs.

Verifies the artifacts the engine executes — op streams lowered to kernels,
optionally transformed by the TP sharding pass — without running a
simulation. Two entry points:

* :func:`check_lowering` — structural invariants any lowering must satisfy
  (finite non-negative work terms, fused kernels that conserve their
  members' work, well-formed collectives);
* :func:`check_sharding` — conservation laws across
  :func:`repro.engine.tp.shard_lowered`: the sharded stream must contain
  the same ops in the same order, sharded kernels must carry exactly
  ``1/degree`` of the original work, replicated kernels must be untouched,
  and every row-parallel boundary must be followed by exactly one
  all-reduce (and no all-reduce may appear anywhere else).
"""

from __future__ import annotations

import math

from repro.check.findings import Finding, Severity, register_rule
from repro.engine.lowering import KernelTask, LoweredOp
from repro.engine.tp import TPConfig, is_sharded_label, needs_allreduce
from repro.workloads.ops import OpKind

G001 = register_rule(
    "G001", "graph", "FLOPs not conserved across the TP sharding pass")
G002 = register_rule(
    "G002", "graph", "bytes not conserved across the TP sharding pass")
G003 = register_rule(
    "G003", "graph",
    "row-parallel boundary not followed by exactly one all-reduce")
G004 = register_rule(
    "G004", "graph", "orphaned all-reduce (no preceding row-parallel boundary)")
G005 = register_rule(
    "G005", "graph", "op stream mutated (dropped/duplicated/reordered ops "
                     "or changed kernel count)")
G006 = register_rule(
    "G006", "graph", "kernel work term is negative or not finite")
G007 = register_rule(
    "G007", "graph", "fused kernel work does not equal the sum of its members")
G008 = register_rule(
    "G008", "graph", "collective kernel inconsistent with its op or TP degree")
G009 = register_rule(
    "G009", "graph", "kernel models no work at all (zero FLOPs and bytes)")

#: Relative tolerance for conservation comparisons. Sharding divides floats
#: by the degree, so exact equality holds for power-of-two degrees but a
#: general checker must allow for one rounding step per term.
_REL_TOL = 1e-9


def _isclose(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=1e-6)


def _check_kernel_terms(kernel: KernelTask, where: str) -> list[Finding]:
    findings = []
    for term in ("flops", "bytes_read", "bytes_written", "comm_bytes"):
        value = getattr(kernel, term)
        if not math.isfinite(value) or value < 0:
            findings.append(Finding(
                G006, Severity.ERROR, where,
                f"kernel {kernel.name!r} has {term}={value!r}"))
    if kernel.members:
        for term in ("flops", "bytes_read", "bytes_written"):
            total = sum(getattr(m, term) for m in kernel.members)
            value = getattr(kernel, term)
            if not _isclose(value, total):
                findings.append(Finding(
                    G007, Severity.ERROR, where,
                    f"fused kernel {kernel.name!r} carries {term}={value} "
                    f"but its {len(kernel.members)} members sum to {total}"))
        for member in kernel.members:
            findings.extend(_check_kernel_terms(member, where))
    if (not kernel.is_collective and kernel.flops == 0
            and kernel.bytes_read == 0 and kernel.bytes_written == 0):
        findings.append(Finding(
            G009, Severity.WARNING, where,
            f"kernel {kernel.name!r} models no FLOPs and no bytes"))
    return findings


def _check_collective(lowered_op: LoweredOp, tp: TPConfig | None,
                      where: str) -> list[Finding]:
    findings = []
    op = lowered_op.op
    if len(lowered_op.kernels) != 1:
        findings.append(Finding(
            G008, Severity.ERROR, where,
            f"all-reduce op lowers to {len(lowered_op.kernels)} kernels, "
            f"expected exactly 1"))
        return findings
    kernel = lowered_op.kernels[0]
    if not kernel.is_collective:
        findings.append(Finding(
            G008, Severity.ERROR, where,
            f"all-reduce kernel {kernel.name!r} carries no comm_bytes"))
    world = op.dims[0] if op.dims else 0
    if tp is not None and world != tp.degree:
        findings.append(Finding(
            G008, Severity.ERROR, where,
            f"all-reduce world size {world} does not match TP degree "
            f"{tp.degree}"))
    return findings


def check_lowering(lowered: list[LoweredOp],
                   tp: TPConfig | None = None) -> list[Finding]:
    """Structural invariants of one lowered op stream."""
    findings: list[Finding] = []
    for index, lowered_op in enumerate(lowered):
        where = f"op[{index}] {lowered_op.op.label}"
        for kernel in lowered_op.kernels:
            findings.extend(_check_kernel_terms(kernel, where))
        if lowered_op.op.kind is OpKind.ALL_REDUCE:
            findings.extend(_check_collective(lowered_op, tp, where))
    return findings


def _total(kernels: tuple[KernelTask, ...], term: str) -> float:
    return sum(getattr(k, term) for k in kernels)


def check_sharding(original: list[LoweredOp], sharded: list[LoweredOp],
                   tp: TPConfig) -> list[Finding]:
    """Conservation laws across the TP sharding pass.

    ``original`` is the single-device lowering, ``sharded`` the per-device
    stream the pass produced for degree ``tp.degree``. Structural checks on
    both streams run first; a mutated op stream (G005) suppresses the
    per-op conservation comparison, which would only cascade.
    """
    findings = check_lowering(sharded, tp)

    compute = [lo for lo in sharded if lo.op.kind is not OpKind.ALL_REDUCE]
    if [lo.op.label for lo in compute] != [lo.op.label for lo in original]:
        findings.append(Finding(
            G005, Severity.ERROR, "op stream",
            f"sharded stream has {len(compute)} compute ops where the "
            f"original has {len(original)}, or their labels diverge"))
        return findings

    degree = float(tp.degree)
    for index, (before, after) in enumerate(zip(original, compute)):
        where = f"op[{index}] {before.op.label}"
        if len(before.kernels) != len(after.kernels):
            findings.append(Finding(
                G005, Severity.ERROR, where,
                f"kernel count changed from {len(before.kernels)} to "
                f"{len(after.kernels)} across the sharding pass"))
            continue
        scale = degree if is_sharded_label(before.op.label) else 1.0
        for term, rule in (("flops", G001), ("bytes_moved", G002)):
            total_before = _total(before.kernels, term)
            total_after = scale * _total(after.kernels, term)
            if not _isclose(total_before, total_after):
                noun = "sharded" if scale != 1.0 else "replicated"
                findings.append(Finding(
                    rule, Severity.ERROR, where,
                    f"{noun} op {term} not conserved: {total_before} before "
                    f"vs {total_after} after (x{tp.degree} devices)"))

    # Every row-parallel boundary must be followed by exactly one
    # all-reduce, and all-reduces may appear nowhere else. At degree 1 the
    # pass is the identity and inserts no collectives.
    if not tp.enabled:
        return findings
    for index, lowered_op in enumerate(sharded):
        op = lowered_op.op
        where = f"op[{index}] {op.label}"
        follower = sharded[index + 1] if index + 1 < len(sharded) else None
        if (op.kind is not OpKind.ALL_REDUCE and lowered_op.kernels
                and needs_allreduce(op.label)):
            if follower is None or follower.op.kind is not OpKind.ALL_REDUCE:
                findings.append(Finding(
                    G003, Severity.ERROR, where,
                    "row-parallel boundary has no all-reduce after it"))
            elif (index + 2 < len(sharded)
                    and sharded[index + 2].op.kind is OpKind.ALL_REDUCE):
                findings.append(Finding(
                    G003, Severity.ERROR, where,
                    "row-parallel boundary followed by more than one "
                    "all-reduce"))
        if op.kind is OpKind.ALL_REDUCE:
            previous = sharded[index - 1] if index > 0 else None
            if (previous is None or not previous.kernels
                    or not needs_allreduce(previous.op.label)):
                findings.append(Finding(
                    G004, Severity.ERROR, where,
                    "all-reduce does not follow a row-parallel boundary"))
    return findings
