"""HostModel — one host's contended CPU, wired into a serving run.

:class:`~repro.hardware.host.HostSpec` is static topology;
:class:`~repro.host.pool.CpuPool` is the raw resource. ``HostModel`` is
the piece a runtime actually holds: it materializes the pool for a given
replica count, maps each replica to its affine NUMA domain, attaches the
pool to the sim core (and the run recorder, so every booking exports as
``host`` trace metadata for the N-rules), and books the cluster router's
and replicas' dispatch work.

``HostConfig`` carries the user-facing knobs (``repro serve
--host-cores/--numa/--pin``); ``cores=0`` means "no host model" at the
CLI layer and callers never construct a ``HostModel`` for it — the
``host=None`` path through the serving stack is bit-identical to a build
without this subsystem (parity-locked, see
``tests/serving/test_host_contention.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.hardware.host import HostSpec, NumaDomain, host_for
from repro.hardware.platform import Platform
from repro.host.pool import CoreGrant, CpuPool, pool_from_domains

if TYPE_CHECKING:
    from repro.obs.recorder import RunRecorder
    from repro.sim.core import SimCore


@dataclass(frozen=True)
class HostConfig:
    """User-facing host-contention knobs (``repro serve`` flags).

    Attributes:
        cores: Core budget override; 0 keeps the cataloged topology. On
            shared-socket hosts this is the host's total core count, on
            per-GPU-domain hosts (GH200/MI300A) the budget of each
            GPU-attached domain (see ``HostSpec.domains_for``).
        numa: Force every replica's dispatch affinity to this domain
            (``--numa``); None assigns each replica its GPU's domain.
        pin: Forbid remote-domain spill (``--pin``): a replica waits for
            a local core instead of borrowing a penalized remote one.
    """

    cores: int = 0
    numa: int | None = None
    pin: bool = False

    def __post_init__(self) -> None:
        if self.cores < 0:
            raise ConfigurationError(
                "host cores must be non-negative (0 = unlimited)")
        if self.numa is not None and self.numa < 0:
            raise ConfigurationError("numa domain must be non-negative")


@dataclass(frozen=True)
class HostStats:
    """What the host's CPU did over one serving run."""

    cores: int
    domains: int
    grants: int
    remote_grants: int
    stall_ns: float
    busy_ns: float
    reservations: int

    @property
    def busy_per_core_ns(self) -> float:
        return self.busy_ns / self.cores if self.cores else 0.0


class HostModel:
    """A finite host serving one run's replicas (and its router)."""

    def __init__(self, spec: HostSpec, replicas: int,
                 config: HostConfig | None = None) -> None:
        if replicas <= 0:
            raise ConfigurationError("replicas must be positive")
        self.spec = spec
        self.config = config or HostConfig()
        self.domains: tuple[NumaDomain, ...] = spec.domains_for(
            replicas, cores_override=self.config.cores)
        if (self.config.numa is not None
                and self.config.numa >= len(self.domains)):
            raise ConfigurationError(
                f"--numa {self.config.numa} is out of range: host "
                f"{spec.name} presents {len(self.domains)} domains")
        self.pool = pool_from_domains(
            [(d.index, d.cores) for d in self.domains],
            name="host", remote_penalty=spec.remote_penalty)
        self.pinned = self.config.pin
        self.recorder: RunRecorder | None = None
        self.grants = 0
        self.remote_grants = 0
        self.reservations = 0
        self.stall_ns = 0.0

    @classmethod
    def for_platform(cls, platform: Platform | str, replicas: int,
                     config: HostConfig | None = None) -> "HostModel":
        """Build the cataloged host of ``platform`` for ``replicas``."""
        return cls(host_for(platform), replicas, config=config)

    # -- wiring ----------------------------------------------------------
    def attach(self, core: SimCore,
               recorder: RunRecorder | None = None) -> None:
        """Bind the pool to the run's sim core and recorder."""
        core.add_host_pool(self.pool)
        self.recorder = recorder
        if recorder is not None:
            recorder.on_host(self.describe())

    def domain_for(self, replica: int) -> int:
        """The NUMA domain replica ``replica`` dispatches from.

        A ``--numa`` override wins; otherwise the replica's GPU domain.
        Autoscaled replicas beyond the materialized domain count fold
        back round-robin (scaling out does not add superchips mid-run).
        """
        if self.config.numa is not None:
            return self.config.numa
        return self.spec.domain_of_gpu(replica) % len(self.domains)

    @property
    def router_domain(self) -> int:
        """Where the cluster router's dispatch work lands (domain 0, or
        the ``--numa`` override — the router shares the replicas' pool)."""
        return self.config.numa if self.config.numa is not None else 0

    # -- booking ---------------------------------------------------------
    def dispatch(self, owner: str, ts_ns: float, cpu_ns: float,
                 domain: int | None = None) -> CoreGrant:
        """Book ``cpu_ns`` of dispatch work and account the grant."""
        grant = self.pool.dispatch(owner, ts_ns, cpu_ns, domain=domain,
                                   pinned=self.pinned)
        self.grants += 1
        if grant.remote:
            self.remote_grants += 1
        self.stall_ns += grant.start_ns - ts_ns
        if self.recorder is not None:
            self.recorder.on_host_grant(
                owner=grant.owner, core=grant.core, domain=grant.domain,
                start_ns=grant.start_ns, end_ns=grant.end_ns,
                cpu_ns=grant.cpu_ns, remote=grant.remote,
                requested_ns=ts_ns)
        return grant

    # -- reporting -------------------------------------------------------
    def describe(self) -> dict:
        """The ``host`` trace-metadata block (rules N001–N004 replay it)."""
        return {
            "name": self.pool.name,
            "platform": self.spec.platform,
            "remote_penalty": self.spec.remote_penalty,
            "pinned": self.pinned,
            "numa_override": self.config.numa,
            "cores": [{"index": core.index, "domain": core.domain,
                       "busy_ns": core.busy_ns, "grants": core.grants}
                      for core in self.pool.cores],
            "replica_domains": {
                str(d.index): list(d.gpus) for d in self.domains},
        }

    def stats(self) -> HostStats:
        return HostStats(
            cores=self.pool.capacity,
            domains=len(self.domains),
            grants=self.grants,
            remote_grants=self.remote_grants,
            stall_ns=self.stall_ns,
            busy_ns=self.pool.busy_ns,
            reservations=self.reservations,
        )
