"""Cost attribution: which operators and modules own the launch tax.

Extends the paper's top-k kernel tracking (Section III-A.5) from kernel
names to the operator and module level: for every root ATen operator the
dependency graph knows its launches, so TKLQT, kernel time, and CPU dispatch
time can be rolled up per operator name — answering "where would fusion or a
faster CPU help most?" directly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.skip.depgraph import DependencyGraph


@dataclass(frozen=True)
class OperatorAttribution:
    """Aggregated costs for one root operator name."""

    name: str
    invocations: int
    launches: int
    cpu_time_ns: float            # root operator durations (dispatch)
    kernel_time_ns: float         # GPU execution time of its kernels
    launch_queue_ns: float        # summed t_l of its launches (TKLQT share)

    @property
    def launches_per_invocation(self) -> float:
        return self.launches / self.invocations if self.invocations else 0.0

    @property
    def mean_kernel_ns(self) -> float:
        return self.kernel_time_ns / self.launches if self.launches else 0.0


@dataclass
class AttributionReport:
    """Per-operator rollup of one trace's costs."""

    operators: list[OperatorAttribution]
    total_tklqt_ns: float
    total_cpu_ns: float
    total_kernel_ns: float

    def top_by(self, key: str, k: int = 10) -> list[OperatorAttribution]:
        """Top-k operators by one of the aggregate fields."""
        if not hasattr(OperatorAttribution, key) and key not in (
                "cpu_time_ns", "kernel_time_ns", "launch_queue_ns",
                "launches", "invocations"):
            raise AnalysisError(f"unknown attribution key {key!r}")
        return sorted(self.operators, key=lambda a: getattr(a, key),
                      reverse=True)[:k]

    def tklqt_share(self, name: str) -> float:
        """Fraction of total TKLQT owned by one operator name."""
        for op in self.operators:
            if op.name == name:
                return (op.launch_queue_ns / self.total_tklqt_ns
                        if self.total_tklqt_ns else 0.0)
        raise AnalysisError(f"operator {name!r} not present in trace")


def attribute_costs(graph: DependencyGraph) -> AttributionReport:
    """Roll up launch/kernel/dispatch costs per root operator name."""
    if not graph.roots:
        raise AnalysisError("dependency graph has no operators")

    invocations: dict[str, int] = defaultdict(int)
    cpu_time: dict[str, float] = defaultdict(float)
    launches: dict[str, int] = defaultdict(int)
    kernel_time: dict[str, float] = defaultdict(float)
    queue_time: dict[str, float] = defaultdict(float)

    for root in graph.roots:
        invocations[root.name] += 1
        cpu_time[root.name] += root.event.dur

    for record in graph.launches:
        root = record.root_operator
        name = root.name if root is not None else "<unattributed>"
        launches[name] += 1
        kernel_time[name] += record.kernel.dur
        queue_time[name] += record.launch_and_queue_ns

    names = set(invocations) | set(launches)
    operators = [
        OperatorAttribution(
            name=name,
            invocations=invocations.get(name, 0),
            launches=launches.get(name, 0),
            cpu_time_ns=cpu_time.get(name, 0.0),
            kernel_time_ns=kernel_time.get(name, 0.0),
            launch_queue_ns=queue_time.get(name, 0.0),
        )
        for name in sorted(names)
    ]
    return AttributionReport(
        operators=operators,
        total_tklqt_ns=sum(queue_time.values()),
        total_cpu_ns=sum(cpu_time.values()),
        total_kernel_ns=sum(kernel_time.values()),
    )


def attribution_table(report: AttributionReport, k: int = 10) -> str:
    """Text table of the k operators with the largest TKLQT share."""
    from repro.units import format_ns

    header = (f"{'operator':30s} {'calls':>6} {'launches':>8} "
              f"{'cpu':>10} {'kernel':>10} {'t_l sum':>10} {'TKLQT%':>7}")
    lines = [header, "-" * len(header)]
    for op in report.top_by("launch_queue_ns", k):
        share = (op.launch_queue_ns / report.total_tklqt_ns * 100
                 if report.total_tklqt_ns else 0.0)
        lines.append(
            f"{op.name:30s} {op.invocations:>6} {op.launches:>8} "
            f"{format_ns(op.cpu_time_ns):>10} {format_ns(op.kernel_time_ns):>10} "
            f"{format_ns(op.launch_queue_ns):>10} {share:>6.1f}%"
        )
    return "\n".join(lines)
