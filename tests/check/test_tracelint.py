"""Trace linter: clean on real exports, loud on scrambled/tampered traces.

Every fixture starts from a real TP=2 engine trace exported through
:mod:`repro.trace.chrome` and applies one surgical mutation, so each test
pins exactly one rule to exactly one corruption.
"""

import json

import pytest

from repro.check import lint_chrome_text
from repro.errors import AnalysisError
from repro.trace import chrome
from repro.trace.events import LAUNCH_KERNEL


def _rule_ids(findings):
    return {f.rule_id for f in findings}


@pytest.fixture(scope="module")
def payload(tp2_trace):
    return json.loads(chrome.dumps(tp2_trace))


def _lint(payload):
    findings, trace = lint_chrome_text(json.dumps(payload))
    return findings, trace


def _events(payload, cat=None, name=None):
    return [e for e in payload["traceEvents"]
            if (cat is None or e.get("cat") == cat)
            and (name is None or e.get("name") == name)]


def _copy(payload):
    return json.loads(json.dumps(payload))


# ----------------------------------------------------------------------
# Clean exports lint clean
# ----------------------------------------------------------------------
def test_fresh_export_is_clean(payload):
    findings, trace = _lint(payload)
    assert findings == []
    assert trace is not None
    assert trace.kernels


def test_export_is_deterministic(tp2_trace):
    assert chrome.dumps(tp2_trace) == chrome.dumps(tp2_trace)


def test_export_is_canonically_ordered(payload):
    begins = [e["args"]["ts_ns"] for e in payload["traceEvents"]]
    assert begins == sorted(begins)


# ----------------------------------------------------------------------
# T001 / T002: raw-file checks
# ----------------------------------------------------------------------
def test_scrambled_events_flagged_t001(payload):
    scrambled = _copy(payload)
    scrambled["traceEvents"] = list(reversed(scrambled["traceEvents"]))
    findings, _ = _lint(scrambled)
    assert "T001" in _rule_ids(findings)


def test_invalid_json_flagged_t002():
    findings, trace = lint_chrome_text("{not json")
    assert _rule_ids(findings) == {"T002"}
    assert trace is None


def test_negative_duration_flagged_t002(payload):
    mutated = _copy(payload)
    kernel = _events(mutated, cat="kernel")[0]
    kernel["dur"] = -1.0
    kernel["args"]["dur_ns"] = -1000.0
    findings, trace = _lint(mutated)
    assert "T002" in _rule_ids(findings)
    assert trace is None  # malformed traces are not parsed further


def test_non_list_trace_events_flagged_t002():
    findings, trace = lint_chrome_text('{"traceEvents": 42}')
    assert _rule_ids(findings) == {"T002"}
    assert trace is None


# ----------------------------------------------------------------------
# T003-T006: launch <-> kernel correlation
# ----------------------------------------------------------------------
def test_duplicate_correlation_flagged_t003(payload):
    mutated = _copy(payload)
    kernels = _events(mutated, cat="kernel")
    kernels[1]["args"]["correlation"] = kernels[0]["args"]["correlation"]
    findings, _ = _lint(mutated)
    assert "T003" in _rule_ids(findings)


def test_orphan_kernel_flagged_t004(payload):
    mutated = _copy(payload)
    kernel = _events(mutated, cat="kernel")[0]
    kernel["args"]["correlation"] = 10**9  # no launch carries this id
    findings, _ = _lint(mutated)
    rule_ids = _rule_ids(findings)
    assert "T004" in rule_ids
    assert "T005" in rule_ids  # its old launch lost its kernel


def test_deleted_kernel_flagged_t005(payload):
    mutated = _copy(payload)
    kernel = _events(mutated, cat="kernel")[0]
    mutated["traceEvents"].remove(kernel)
    findings, _ = _lint(mutated)
    assert "T005" in _rule_ids(findings)


def test_kernel_before_launch_flagged_t006(payload):
    mutated = _copy(payload)
    launches = {e["args"]["correlation"]: e for e in _events(
        mutated, cat="cuda_runtime", name=LAUNCH_KERNEL)}
    kernel = next(e for e in _events(mutated, cat="kernel")
                  if e["args"]["correlation"] in launches)
    launch = launches[kernel["args"]["correlation"]]
    early = launch["args"]["ts_ns"] - 5000.0
    kernel["args"]["ts_ns"] = early
    kernel["ts"] = early / 1e3
    findings, _ = _lint(mutated)
    assert "T006" in _rule_ids(findings)


# ----------------------------------------------------------------------
# T007 / T008: stream and iteration ordering
# ----------------------------------------------------------------------
def test_overlapping_kernels_flagged_t007(payload):
    mutated = _copy(payload)
    kernels = sorted(
        (e for e in _events(mutated, cat="kernel")
         if e["args"]["stream"] == _events(
             mutated, cat="kernel")[0]["args"]["stream"]
         and e["args"]["device"] == _events(
             mutated, cat="kernel")[0]["args"]["device"]),
        key=lambda e: e["args"]["ts_ns"])
    first, second = kernels[0], kernels[1]
    stretched = second["args"]["ts_ns"] - first["args"]["ts_ns"] + 2000.0
    first["args"]["dur_ns"] = stretched
    first["dur"] = stretched / 1e3
    findings, _ = _lint(mutated)
    assert "T007" in _rule_ids(findings)


def test_overlapping_iterations_flagged_t008(payload):
    mutated = _copy(payload)
    marks = sorted(_events(mutated, cat="user_annotation"),
                   key=lambda e: e["args"]["ts_ns"])
    assert len(marks) >= 2
    stretched = (marks[1]["args"]["ts_ns"] - marks[0]["args"]["ts_ns"]
                 + 1000.0)
    marks[0]["args"]["dur_ns"] = stretched
    marks[0]["dur"] = stretched / 1e3
    findings, _ = _lint(mutated)
    assert "T008" in _rule_ids(findings)


# ----------------------------------------------------------------------
# T009: sidecar tampering
# ----------------------------------------------------------------------
def test_sidecar_disagreement_flagged_t009(payload):
    mutated = _copy(payload)
    kernel = _events(mutated, cat="kernel")[0]
    kernel["args"]["ts_ns"] = kernel["args"]["ts_ns"] + 500.0  # us untouched
    findings, _ = _lint(mutated)
    assert "T009" in _rule_ids(findings)


# ----------------------------------------------------------------------
# T010: metric identities
# ----------------------------------------------------------------------
def test_diverging_pipeline_metrics_flagged_t010(payload, monkeypatch):
    import repro.skip.metrics as skip_metrics

    real = skip_metrics.compute_metrics

    def distorted(trace):
        metrics = real(trace)
        iteration = metrics.iterations[0]
        object.__setattr__(iteration, "__dict__",
                           {**vars(iteration),
                            "tklqt_ns": iteration.tklqt_ns * 2 + 1e6})
        return metrics

    monkeypatch.setattr(skip_metrics, "compute_metrics", distorted)
    findings, _ = _lint(payload)
    assert "T010" in _rule_ids(findings)
    assert any("tklqt_ns" in f.message for f in findings)


def test_uncomputable_metrics_flagged_t010(payload, monkeypatch):
    import repro.skip.metrics as skip_metrics

    def broken(trace):
        raise AnalysisError("no iterations survived attribution")

    monkeypatch.setattr(skip_metrics, "compute_metrics", broken)
    findings, _ = _lint(payload)
    assert _rule_ids(findings) == {"T010"}


def test_identities_skipped_when_structure_is_broken(payload):
    # A structurally broken trace must not cascade into T010 noise.
    mutated = _copy(payload)
    kernel = _events(mutated, cat="kernel")[0]
    mutated["traceEvents"].remove(kernel)
    findings, _ = _lint(mutated)
    assert "T010" not in _rule_ids(findings)
