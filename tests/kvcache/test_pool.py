"""Block geometry and the counting allocator."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.hardware import GH200
from repro.kvcache import (
    KV_BLOCK_TOKENS,
    BlockPool,
    block_bytes,
    blocks_for_tokens,
    pool_bytes,
    pool_capacity_blocks,
)
from repro.units import gib_to_bytes
from repro.workloads import BERT_BASE, GPT2, LLAMA_3_2_1B
from repro.workloads.memory import RUNTIME_RESERVE_BYTES, weights_bytes
from repro.workloads.ops import FP16_BYTES


def test_block_bytes_formula():
    expected = 2 * GPT2.layers * GPT2.kv_dim * FP16_BYTES * KV_BLOCK_TOKENS
    assert block_bytes(GPT2) == expected
    assert isinstance(block_bytes(GPT2), int)


def test_block_bytes_respects_gqa():
    # Llama-3.2-1B's grouped KV heads shrink the block by hidden/kv_dim.
    assert LLAMA_3_2_1B.kv_dim < LLAMA_3_2_1B.hidden
    mha_equivalent = (2 * LLAMA_3_2_1B.layers * LLAMA_3_2_1B.hidden
                      * FP16_BYTES * KV_BLOCK_TOKENS)
    assert block_bytes(LLAMA_3_2_1B) < mha_equivalent


def test_encoder_only_has_no_kv_pool():
    with pytest.raises(ConfigurationError):
        block_bytes(BERT_BASE)


def test_blocks_for_tokens_is_ceiling_division():
    assert blocks_for_tokens(0) == 0
    assert blocks_for_tokens(1) == 1
    assert blocks_for_tokens(KV_BLOCK_TOKENS) == 1
    assert blocks_for_tokens(KV_BLOCK_TOKENS + 1) == 2
    with pytest.raises(ConfigurationError):
        blocks_for_tokens(-1)
    with pytest.raises(ConfigurationError):
        blocks_for_tokens(10, block_tokens=0)


def test_pool_bytes_explicit_knob_is_exact_int():
    assert pool_bytes(GPT2, GH200.gpu, pool_gib=0.5) == gib_to_bytes(0.5)
    assert isinstance(pool_bytes(GPT2, GH200.gpu, pool_gib=0.5), int)


def test_pool_bytes_default_charges_weights_and_reserve():
    free = pool_bytes(GPT2, GH200.gpu)
    expected = (gib_to_bytes(GH200.gpu.memory_gib)
                - int(weights_bytes(GPT2)) - RUNTIME_RESERVE_BYTES)
    assert free == expected
    assert isinstance(free, int)


def test_pool_capacity_is_floor_of_blocks():
    capacity = pool_capacity_blocks(GPT2, GH200.gpu, pool_gib=0.02)
    assert capacity == gib_to_bytes(0.02) // block_bytes(GPT2)
    assert capacity > 0


def test_pool_smaller_than_one_block_is_rejected():
    with pytest.raises(ConfigurationError):
        pool_capacity_blocks(GPT2, GH200.gpu, pool_gib=1e-6)
    with pytest.raises(ConfigurationError):
        pool_bytes(GPT2, GH200.gpu, pool_gib=0.0)


def test_block_pool_accounting():
    pool = BlockPool(10)
    pool.allocate("a", 4)
    pool.allocate("b", 3)
    pool.allocate("a", 2)
    assert pool.allocated == 9
    assert pool.free_blocks == 1
    assert pool.held("a") == 6
    assert pool.owners() == ["a", "b"]
    assert pool.can_allocate(1) and not pool.can_allocate(2)
    assert pool.release("a") == 6
    assert pool.allocated == 3
    assert pool.release("missing") == 0


def test_block_pool_refuses_over_commit():
    pool = BlockPool(4)
    pool.allocate("a", 3)
    with pytest.raises(SimulationError):
        pool.allocate("b", 2)
    with pytest.raises(SimulationError):
        pool.allocate("a", 0)
    with pytest.raises(ConfigurationError):
        BlockPool(0)
