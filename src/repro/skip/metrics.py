"""SKIP's fine-grained kernel metrics (Section III-A of the paper).

All metrics are computed per profiled iteration and averaged:

* **TKLQT** (Eq. 2) — sum over kernels of launch-call begin to kernel begin.
* **AKD** (Eq. 3) — mean kernel duration.
* **IL** (Eq. 4) — end of last kernel minus begin of first parent operator.
* **GPU idle** (Eq. 5) — IL minus total kernel execution time.
* **CPU idle** — IL minus CPU busy time (top-level operator durations).
* **Top-k kernels** — the most frequently launched kernels with their
  aggregate duration and offload tax.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from itertools import chain

from repro.errors import AnalysisError
from repro.skip.depgraph import DependencyGraph
from repro.trace.tape import TraceTape
from repro.trace.trace import Trace


@dataclass(frozen=True)
class KernelAggregate:
    """Per-kernel-name aggregate used for top-k tracking."""

    name: str
    count: int
    total_duration_ns: float
    total_launch_queue_ns: float

    @property
    def mean_duration_ns(self) -> float:
        return self.total_duration_ns / self.count

    @property
    def mean_launch_queue_ns(self) -> float:
        return self.total_launch_queue_ns / self.count


@dataclass(frozen=True)
class DeviceMetrics:
    """Per-GPU-device SKIP metrics, averaged over profiled iterations.

    Multi-device (tensor-parallel) traces carry kernels from several GPU
    ordinals; partitioning TKLQT/AKD/idle by device shows whether the CPU
    dispatch bottleneck hits all devices equally (single dispatch thread) or
    is spread out (per-device dispatch). Device TKLQT values sum to the
    aggregate TKLQT (each launch belongs to exactly one device).
    """

    device: int
    tklqt_ns: float
    akd_ns: float
    gpu_busy_ns: float
    gpu_idle_ns: float
    kernel_launches: float

    @property
    def mean_launch_queue_ns(self) -> float:
        """Average per-kernel ``t_l`` on this device."""
        return self.tklqt_ns / self.kernel_launches if self.kernel_launches else 0.0


@dataclass(frozen=True)
class IterationMetrics:
    """Metrics for one profiled iteration."""

    index: int
    tklqt_ns: float
    akd_ns: float
    inference_latency_ns: float
    gpu_idle_ns: float
    cpu_idle_ns: float
    cpu_busy_ns: float
    gpu_busy_ns: float
    kernel_launches: int
    min_launch_overhead_ns: float

    @property
    def queuing_ns(self) -> float:
        """TKLQT in excess of the unqueued launch floor."""
        return self.tklqt_ns - self.kernel_launches * self.min_launch_overhead_ns


@dataclass
class SkipMetrics:
    """Averaged SKIP metrics for a trace, plus per-iteration detail."""

    iterations: list[IterationMetrics]
    top_kernels: list[KernelAggregate] = field(default_factory=list)
    devices: list[DeviceMetrics] = field(default_factory=list)

    def _mean(self, attr: str) -> float:
        values = [getattr(it, attr) for it in self.iterations]
        return sum(values) / len(values)

    @property
    def tklqt_ns(self) -> float:
        return self._mean("tklqt_ns")

    @property
    def akd_ns(self) -> float:
        return self._mean("akd_ns")

    @property
    def inference_latency_ns(self) -> float:
        return self._mean("inference_latency_ns")

    @property
    def gpu_idle_ns(self) -> float:
        return self._mean("gpu_idle_ns")

    @property
    def cpu_idle_ns(self) -> float:
        return self._mean("cpu_idle_ns")

    @property
    def cpu_busy_ns(self) -> float:
        return self._mean("cpu_busy_ns")

    @property
    def gpu_busy_ns(self) -> float:
        return self._mean("gpu_busy_ns")

    @property
    def kernel_launches(self) -> float:
        return self._mean("kernel_launches")

    @property
    def queuing_ns(self) -> float:
        return self._mean("queuing_ns")

    @property
    def mean_launch_queue_ns(self) -> float:
        """Average per-kernel ``t_l``."""
        launches = self.kernel_launches
        return self.tklqt_ns / launches if launches else 0.0

    def top_k(self, k: int = 10) -> list[KernelAggregate]:
        """The k most frequently launched kernels."""
        return self.top_kernels[:k]

    def device(self, index: int) -> DeviceMetrics:
        """Metrics for one GPU ordinal."""
        for device in self.devices:
            if device.device == index:
                return device
        raise AnalysisError(f"no kernels from device {index} in this trace")


def compute_metrics(trace: Trace,
                    graph: DependencyGraph | None = None) -> SkipMetrics:
    """Compute SKIP metrics from a trace.

    The trace must contain at least one iteration mark; the engine always
    emits them, and imported Chrome traces carry ``ProfilerStep`` annotations.

    Raises:
        AnalysisError: when the trace has no iterations or an iteration has
            no kernels.
    """
    if graph is None:
        graph = DependencyGraph.from_trace(trace)
    if not trace.iterations:
        raise AnalysisError("trace has no iteration marks; cannot compute metrics")

    per_iteration: list[IterationMetrics] = []
    name_stats: dict[str, list[float]] = defaultdict(lambda: [0, 0.0, 0.0])
    # device -> [tklqt, busy, launches], accumulated across iterations.
    # Kept separate from the aggregate sums above so adding the per-device
    # breakdown cannot perturb the aggregate floating-point results.
    device_stats: dict[int, list[float]] = defaultdict(lambda: [0.0, 0.0, 0])

    for mark in trace.iterations:
        launches = graph.launches_in(mark.ts, mark.ts_end)
        graph_kernels = [k for k in graph.graph_kernels
                         if mark.ts <= k.ts < mark.ts_end]
        kernels = [r.kernel for r in launches] + graph_kernels
        if not kernels:
            raise AnalysisError(f"iteration {mark.index} launched no kernels")

        tklqt = sum(r.launch_and_queue_ns for r in launches)
        gpu_busy = sum(k.dur for k in kernels)
        akd = gpu_busy / len(kernels)

        roots = graph.roots_in(mark.ts, mark.ts_end)
        if not roots:
            raise AnalysisError(f"iteration {mark.index} has no operators")
        first_parent_ts = min(r.event.ts for r in roots)
        last_kernel_end = max(k.ts_end for k in kernels)
        il = last_kernel_end - first_parent_ts

        cpu_busy = sum(r.event.dur for r in roots)
        min_overhead = (min(r.launch_and_queue_ns for r in launches)
                        if launches else 0.0)

        per_iteration.append(IterationMetrics(
            index=mark.index,
            tklqt_ns=tklqt,
            akd_ns=akd,
            inference_latency_ns=il,
            gpu_idle_ns=il - gpu_busy,
            cpu_idle_ns=max(0.0, il - cpu_busy),
            cpu_busy_ns=cpu_busy,
            gpu_busy_ns=gpu_busy,
            kernel_launches=len(kernels),
            min_launch_overhead_ns=min_overhead,
        ))

        for record in launches:
            stats = name_stats[record.kernel.name]
            stats[0] += 1
            stats[1] += record.kernel.dur
            stats[2] += record.launch_and_queue_ns
        for kernel in graph_kernels:
            stats = name_stats[kernel.name]
            stats[0] += 1
            stats[1] += kernel.dur

        for record in launches:
            stats = device_stats[record.kernel.device]
            stats[0] += record.launch_and_queue_ns
            stats[1] += record.kernel.dur
            stats[2] += 1
        for kernel in graph_kernels:
            stats = device_stats[kernel.device]
            stats[1] += kernel.dur
            stats[2] += 1

    aggregates = [
        KernelAggregate(name, int(count), total_dur, total_lq)
        for name, (count, total_dur, total_lq) in name_stats.items()
    ]
    aggregates.sort(key=lambda a: (-a.count, -a.total_duration_ns, a.name))

    n_iterations = len(per_iteration)
    mean_il = (sum(it.inference_latency_ns for it in per_iteration)
               / n_iterations)
    device_metrics = [
        DeviceMetrics(
            device=device,
            tklqt_ns=tklqt / n_iterations,
            akd_ns=busy / count if count else 0.0,
            gpu_busy_ns=busy / n_iterations,
            gpu_idle_ns=mean_il - busy / n_iterations,
            kernel_launches=count / n_iterations,
        )
        for device, (tklqt, busy, count) in sorted(device_stats.items())
    ]

    # The full per-name population is kept (it is small — tens of distinct
    # names); top_k() slices on demand and diffing needs all of it.
    return SkipMetrics(iterations=per_iteration, top_kernels=aggregates,
                       devices=device_metrics)


def metrics_from_tape(tape: TraceTape) -> SkipMetrics:
    """Compute SKIP metrics from a :class:`~repro.trace.tape.TraceTape`.

    Bit-identical to ``compute_metrics(trace)`` on the equivalent full
    trace: every sort key, iteration order, and floating-point summation
    order below mirrors :func:`compute_metrics` plus the parts of
    :meth:`~repro.skip.depgraph.DependencyGraph.from_trace` it consumes.
    The fast-path parity suite locks the equivalence.

    Raises:
        AnalysisError: when the tape has no iterations or an iteration has
            no kernels or no operators.
    """
    from repro.trace.tape import (
        G_DEVICE, G_DUR, G_ID, G_NAME, G_TS,
        L_CALL_ID, L_CALL_TS, L_DEVICE, L_DUR, L_NAME, L_TS,
        OP_DUR, OP_ID, OP_SEQ, OP_TID, OP_TS,
    )

    if not tape.iterations:
        raise AnalysisError("trace has no iteration marks; cannot compute metrics")

    # Root detection, replicating DependencyGraph.from_trace. Runtime calls
    # are absent from the tape but cannot change which operators are roots
    # (they never push the containment stack and the pop scan is monotone in
    # ts), nor the roots' order (roots come only from operator records, in
    # per-tid scan order).
    ops = sorted(tape.ops, key=lambda r: (r[OP_TS], r[OP_SEQ], r[OP_ID]))
    threads: dict[int, list[list]] = {}
    for record in ops:
        threads.setdefault(record[OP_TID], []).append(record)
    roots: list[list] = []
    for tid_events in threads.values():
        tid_events.sort(key=lambda r: (r[OP_TS], -r[OP_DUR], r[OP_ID]))
        stack: list[list] = []
        for record in tid_events:
            ts = record[OP_TS]
            while stack and ts >= stack[-1][OP_TS] + stack[-1][OP_DUR]:
                stack.pop()
            if not stack:
                roots.append(record)
            stack.append(record)

    launches = sorted(tape.launches,
                      key=lambda r: (r[L_CALL_TS], r[L_CALL_ID]))
    graph_kernels = sorted(tape.graph_kernels,
                           key=lambda k: (k[G_TS], k[G_ID]))

    per_iteration: list[IterationMetrics] = []
    name_stats: dict[str, list[float]] = defaultdict(lambda: [0, 0.0, 0.0])
    device_stats: dict[int, list[float]] = defaultdict(lambda: [0.0, 0.0, 0])

    for mark in tape.iterations:
        ts0, ts1 = mark.ts, mark.ts_end
        marked = [r for r in launches if ts0 <= r[L_CALL_TS] < ts1]
        marked_graph = [k for k in graph_kernels if ts0 <= k[G_TS] < ts1]
        n_kernels = len(marked) + len(marked_graph)
        if not n_kernels:
            raise AnalysisError(f"iteration {mark.index} launched no kernels")

        tklqt = sum(r[L_TS] - r[L_CALL_TS] for r in marked)
        # One chained sum over launches-then-graph-kernels, matching the
        # concatenated-list sum in compute_metrics term for term.
        gpu_busy = sum(chain((r[L_DUR] for r in marked),
                             (k[G_DUR] for k in marked_graph)))
        akd = gpu_busy / n_kernels

        roots_in = [r for r in roots if ts0 <= r[OP_TS] < ts1]
        if not roots_in:
            raise AnalysisError(f"iteration {mark.index} has no operators")
        first_parent_ts = min(r[OP_TS] for r in roots_in)
        last_kernel_end = max(chain((r[L_TS] + r[L_DUR] for r in marked),
                                    (k[G_TS] + k[G_DUR] for k in marked_graph)))
        il = last_kernel_end - first_parent_ts

        cpu_busy = sum(r[OP_DUR] for r in roots_in)
        min_overhead = (min(r[L_TS] - r[L_CALL_TS] for r in marked)
                        if marked else 0.0)

        per_iteration.append(IterationMetrics(
            index=mark.index,
            tklqt_ns=tklqt,
            akd_ns=akd,
            inference_latency_ns=il,
            gpu_idle_ns=il - gpu_busy,
            cpu_idle_ns=max(0.0, il - cpu_busy),
            cpu_busy_ns=cpu_busy,
            gpu_busy_ns=gpu_busy,
            kernel_launches=n_kernels,
            min_launch_overhead_ns=min_overhead,
        ))

        for record in marked:
            stats = name_stats[record[L_NAME]]
            stats[0] += 1
            stats[1] += record[L_DUR]
            stats[2] += record[L_TS] - record[L_CALL_TS]
        for kernel in marked_graph:
            stats = name_stats[kernel[G_NAME]]
            stats[0] += 1
            stats[1] += kernel[G_DUR]

        for record in marked:
            stats = device_stats[record[L_DEVICE]]
            stats[0] += record[L_TS] - record[L_CALL_TS]
            stats[1] += record[L_DUR]
            stats[2] += 1
        for kernel in marked_graph:
            stats = device_stats[kernel[G_DEVICE]]
            stats[1] += kernel[G_DUR]
            stats[2] += 1

    aggregates = [
        KernelAggregate(name, int(count), total_dur, total_lq)
        for name, (count, total_dur, total_lq) in name_stats.items()
    ]
    aggregates.sort(key=lambda a: (-a.count, -a.total_duration_ns, a.name))

    n_iterations = len(per_iteration)
    mean_il = (sum(it.inference_latency_ns for it in per_iteration)
               / n_iterations)
    device_metrics = [
        DeviceMetrics(
            device=device,
            tklqt_ns=tklqt / n_iterations,
            akd_ns=busy / count if count else 0.0,
            gpu_busy_ns=busy / n_iterations,
            gpu_idle_ns=mean_il - busy / n_iterations,
            kernel_launches=count / n_iterations,
        )
        for device, (tklqt, busy, count) in sorted(device_stats.items())
    ]

    return SkipMetrics(iterations=per_iteration, top_kernels=aggregates,
                       devices=device_metrics)
