"""Traffic generation: arrival processes + length/tag sampling.

This is the top tier of the cluster stack: it turns an
:class:`~repro.traffic.arrivals.ArrivalSpec` plus length distributions and
tagging knobs into a stream of
:class:`~repro.serving.requests.ServingRequest` objects the router consumes.

Three independent RNG streams (derived from the one spec seed) sample
arrivals, lengths, and tags, so turning a tagging knob — say raising
``--prefix-share`` — never perturbs *when* requests arrive or *how long*
they are. That separation is what makes cached-vs-uncached comparisons
apples-to-apples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.serving.requests import Request, ServingRequest
from repro.traffic.arrivals import ArrivalFamily, ArrivalSpec, arrival_times_ns

#: Seed offsets separating the three sampling concerns.
_LENGTH_STREAM = 0x1E57
_TAG_STREAM = 0x7A65


@dataclass(frozen=True)
class PrefixSpec:
    """Shared-prefix tagging: which requests share a cached system prompt.

    Attributes:
        share: Fraction of requests tagged with a shared prefix, in
            ``[0, 1]``. 0 disables tagging entirely (bit-parity knob).
        prefix_len: Tokens the shared prefix spans. Tagged requests'
            prompts are the prefix plus their sampled suffix.
        pool: Number of distinct prefixes in rotation (tenants' system
            prompts); tagged requests draw uniformly from it.
    """

    share: float = 0.0
    prefix_len: int = 256
    pool: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.share <= 1.0:
            raise ConfigurationError("prefix share must be in [0, 1]")
        if self.prefix_len <= 0:
            raise ConfigurationError("prefix_len must be positive")
        if self.pool <= 0:
            raise ConfigurationError("prefix pool must be positive")


@dataclass(frozen=True)
class TrafficConfig:
    """Everything that determines one generated request stream."""

    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    prompt_len: int = 512
    prompt_jitter: int = 0
    output_tokens: int = 64
    output_jitter: int = 0
    prefix: PrefixSpec = field(default_factory=PrefixSpec)
    sessions: int = 0   # distinct sticky sessions; 0 leaves requests untagged
    tenants: int = 1

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.output_tokens <= 0:
            raise ConfigurationError(
                "prompt_len and output_tokens must be positive")
        if self.prompt_jitter < 0 or self.output_jitter < 0:
            raise ConfigurationError("jitter must be non-negative")
        if self.sessions < 0:
            raise ConfigurationError("sessions must be non-negative")
        if self.tenants <= 0:
            raise ConfigurationError("tenants must be positive")


def generate_traffic(config: TrafficConfig) -> list[ServingRequest]:
    """Sample the full stream: arrivals, lengths, then tags."""
    if config.arrivals.family is ArrivalFamily.FIXED:
        raise ConfigurationError(
            "FIXED traffic wraps an explicit request list — use "
            "tag_requests() on it instead of generate_traffic()")
    times = arrival_times_ns(config.arrivals)
    length_rng = random.Random(config.arrivals.seed + _LENGTH_STREAM)
    tag_rng = random.Random(config.arrivals.seed + _TAG_STREAM)
    requests: list[ServingRequest] = []
    for index, arrival_ns in enumerate(times):
        plen = config.prompt_len + (
            length_rng.randint(-config.prompt_jitter, config.prompt_jitter)
            if config.prompt_jitter else 0)
        olen = config.output_tokens + (
            length_rng.randint(-config.output_jitter, config.output_jitter)
            if config.output_jitter else 0)
        requests.append(_tagged(index, arrival_ns, max(1, plen), max(1, olen),
                                config, tag_rng))
    return requests


def _tagged(index: int, arrival_ns: float, prompt_len: int,
            output_tokens: int, config: TrafficConfig,
            tag_rng: random.Random) -> ServingRequest:
    prefix_hash: int | None = None
    prefix_len = 0
    spec = config.prefix
    if spec.share > 0 and tag_rng.random() < spec.share:
        prefix_hash = 1 + tag_rng.randrange(spec.pool)
        prefix_len = spec.prefix_len
        # The shared prefix prepends the sampled suffix, so tagged
        # requests' prompts are strictly longer than the prefix.
        prompt_len = prefix_len + prompt_len
    session = (f"s{tag_rng.randrange(config.sessions)}"
               if config.sessions else None)
    tenant = (f"t{tag_rng.randrange(config.tenants)}"
              if config.tenants > 1 else "default")
    return ServingRequest(
        request_id=index,
        arrival_ns=arrival_ns,
        prompt_len=prompt_len,
        output_tokens=output_tokens,
        tenant=tenant,
        session=session,
        prefix_hash=prefix_hash,
        prefix_len=prefix_len,
    )


def tag_requests(requests: Sequence[Request],
                 prefix: PrefixSpec | None = None,
                 sessions: int = 0,
                 tenants: int = 1,
                 seed: int = 0) -> list[Request]:
    """Lift an explicit (FIXED) request list into tagged ServingRequests.

    Arrival times and lengths are preserved exactly — only tags are added,
    so a fixed-arrival scenario stays bit-identical to the legacy list.
    With no tagging requested at all the input list is returned unchanged
    (the ``--prefix-share 0`` parity lock is this early return).
    """
    share = prefix.share if prefix is not None else 0.0
    if share == 0.0 and sessions == 0 and tenants <= 1:
        return list(requests)
    tag_rng = random.Random(seed + _TAG_STREAM)
    tagged: list[Request] = []
    for request in requests:
        prefix_hash: int | None = None
        prefix_len = 0
        if prefix is not None and share > 0 and tag_rng.random() < share:
            # Prompts are fixed here, so the prefix must fit inside them.
            usable = min(prefix.prefix_len, request.prompt_len - 1)
            if usable > 0:
                prefix_hash = 1 + tag_rng.randrange(prefix.pool)
                prefix_len = usable
        session = f"s{tag_rng.randrange(sessions)}" if sessions else None
        tenant = f"t{tag_rng.randrange(tenants)}" if tenants > 1 else "default"
        tagged.append(ServingRequest(
            request_id=request.request_id,
            arrival_ns=request.arrival_ns,
            prompt_len=request.prompt_len,
            output_tokens=request.output_tokens,
            tenant=tenant,
            session=session,
            prefix_hash=prefix_hash,
            prefix_len=prefix_len,
        ))
    return tagged
