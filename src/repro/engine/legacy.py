"""Legacy single-device executor, preserved as a parity oracle.

This module keeps the pre-simulation-core executor loops exactly as they
were: one CPU clock walking the op stream against one in-order GPU stream.
The event-driven engine (:mod:`repro.engine.processes`) must reproduce these
traces bit-identically at TP=1 — the property suite runs both and compares
event streams. Nothing in the package calls this at runtime; it exists so
the refactored engine has an executable specification to diff against.
"""

from __future__ import annotations

from repro.engine.compiler import apply_inductor_fusion, compile_time
from repro.engine.fusion_apply import FusionPlan
from repro.engine.lowering import KernelTask, lower_graph
from repro.engine.modes import ExecutionMode
from repro.errors import ConfigurationError
from repro.hardware.platform import Platform
from repro.sim.resources import StreamResource
from repro.trace.builder import TraceBuilder
from repro.trace.events import DEVICE_SYNCHRONIZE, GRAPH_LAUNCH
from repro.trace.trace import Trace
from repro.workloads.builder import AttentionImpl, build_graph
from repro.workloads.config import ModelConfig
from repro.workloads.graph import OperatorGraph, Phase
from repro.workloads.ops import OpKind

_CHILD_OP_NAMES = {
    OpKind.LINEAR: "aten::addmm",
    OpKind.MATMUL: "aten::bmm",
}


def run_legacy(
    model: ModelConfig | OperatorGraph,
    platform: Platform,
    batch_size: int = 1,
    seq_len: int = 512,
    mode: ExecutionMode = ExecutionMode.EAGER,
    phase: Phase = Phase.PREFILL,
    context_len: int | None = None,
    config=None,
    fusion_plan: FusionPlan | None = None,
) -> Trace:
    """Simulate with the legacy loops and return the trace."""
    from repro.engine.executor import DEFAULT_CONFIG, _apply_plan_to_lowered

    if config is None:
        config = DEFAULT_CONFIG
    if isinstance(model, OperatorGraph):
        graph = model
    else:
        attention = (AttentionImpl.FLASH if mode.uses_flash_attention
                     else AttentionImpl.EAGER)
        graph = build_graph(model, batch_size, seq_len, phase=phase,
                            attention=attention, context_len=context_len)

    lowered = lower_graph(graph)
    lowered = apply_inductor_fusion(lowered, mode)
    if mode is ExecutionMode.PROXIMITY_FUSED:
        if fusion_plan is None:
            raise ConfigurationError("PROXIMITY_FUSED mode requires a fusion_plan")
        lowered = _apply_plan_to_lowered(lowered, fusion_plan)

    kernel_count = sum(len(lo.kernels) for lo in lowered)
    compile_time(graph, mode, kernel_count)

    builder = TraceBuilder(metadata={
        "platform": platform.name,
        "model": graph.model_name,
        "mode": mode.value,
        "phase": graph.phase.value,
        "batch_size": graph.batch_size,
        "seq_len": graph.seq_len,
    })
    if mode.uses_cuda_graph:
        _simulate_graph_mode(builder, lowered, platform, config)
    else:
        _simulate_launch_mode(builder, lowered, platform, mode, config)
    return builder.finish()


def _simulate_launch_mode(builder, lowered, platform, mode, config) -> None:
    stream = StreamResource()
    cpu = 0.0
    launched = 0
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured:
            builder.begin_iteration(cpu)
        for lowered_op in lowered:
            op = lowered_op.op
            if mode.fuses_elementwise:
                dispatch = config.compiled_guard_ns / platform.cpu.dispatch_score
            else:
                dispatch = platform.dispatch_ns(op.dispatch_cost_ns)
            epilogue = dispatch * config.dispatch_epilogue_fraction
            pre = dispatch - epilogue

            parent = builder.begin_operator(op.aten_name, cpu)
            child = None
            child_name = _CHILD_OP_NAMES.get(op.kind)
            if child_name and lowered_op.kernels and not mode.fuses_elementwise:
                cpu += pre * (1.0 - config.child_dispatch_fraction)
                child = builder.begin_operator(child_name, cpu)
                cpu += pre * config.child_dispatch_fraction
            else:
                cpu += pre

            for kernel in lowered_op.kernels:
                backlog_index = launched - config.launch_queue_depth
                if backlog_index >= 0:
                    cpu = max(cpu, stream.nth_start(backlog_index))
                call_ts = cpu
                duration = _kernel_duration(platform, kernel)
                arrival = call_ts + platform.launch_latency_ns
                start, _end = stream.submit(arrival, duration,
                                            gap_ns=config.stream_kernel_gap_ns)
                builder.launch_kernel(
                    call_ts,
                    platform.launch_call_cpu_ns,
                    kernel.name,
                    start,
                    duration,
                    stream=stream.stream_id,
                    flops=kernel.flops,
                    bytes_moved=kernel.bytes_moved,
                )
                cpu += platform.launch_call_cpu_ns
                launched += 1

            if child is not None:
                builder.end_operator(child, cpu)
            cpu += epilogue
            builder.end_operator(parent, cpu)

        cpu = _end_iteration_sync(builder, stream, cpu, config,
                                  measured=measured)


def _simulate_graph_mode(builder, lowered, platform, config) -> None:
    stream = StreamResource()
    cpu = 0.0
    kernels = [k for lo in lowered for k in lo.kernels]
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured:
            builder.begin_iteration(cpu)
        parent = builder.begin_operator("cuda_graph::replay", cpu)
        cpu += platform.dispatch_ns(config.graph_replay_dispatch_ns)
        call_ts = cpu
        builder.runtime_call(GRAPH_LAUNCH, call_ts, platform.launch_call_cpu_ns)
        cpu += platform.launch_call_cpu_ns
        arrival = call_ts + platform.launch_latency_ns
        for kernel in kernels:
            duration = _kernel_duration(
                platform, kernel, floor_scale=config.graph_kernel_floor_scale)
            start, end = stream.submit(arrival, duration)
            builder.enqueue_graph_kernel(
                kernel.name, start, duration,
                stream=stream.stream_id,
                flops=kernel.flops,
                bytes_moved=kernel.bytes_moved,
            )
            arrival = end + config.graph_replay_kernel_gap_ns
        builder.end_operator(parent, cpu)
        cpu = _end_iteration_sync(builder, stream, cpu, config,
                                  measured=measured)


def _kernel_duration(platform: Platform, kernel: KernelTask,
                     floor_scale: float = 1.0) -> float:
    if kernel.members:
        return sum(_kernel_duration(platform, member, floor_scale)
                   for member in kernel.members)
    return (platform.kernel_duration_ns(kernel.flops, kernel.bytes_moved,
                                        floor_scale=floor_scale)
            * kernel.duration_scale)


def _end_iteration_sync(builder, stream, cpu, config, measured=True) -> float:
    wait = max(0.0, stream.free_at - cpu)
    builder.runtime_call(DEVICE_SYNCHRONIZE, cpu, config.sync_call_ns + wait)
    cpu += config.sync_call_ns + wait
    if measured:
        builder.end_iteration(cpu)
    return cpu + config.inter_iteration_gap_ns
