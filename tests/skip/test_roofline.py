"""Per-kernel roofline classification."""

import pytest

from repro.errors import AnalysisError
from repro.hardware import INTEL_H100
from repro.skip import KernelRegime, classify_kernels
from repro.trace import Trace, chrome
from repro.workloads import BERT_BASE


@pytest.fixture(scope="module")
def small_batch_report(intel_profiler):
    result = intel_profiler.profile(BERT_BASE, batch_size=1, seq_len=512)
    return classify_kernels(result.trace, INTEL_H100.gpu)


@pytest.fixture(scope="module")
def large_batch_report(intel_profiler):
    result = intel_profiler.profile(BERT_BASE, batch_size=64, seq_len=512)
    return classify_kernels(result.trace, INTEL_H100.gpu)


def test_every_kernel_classified(small_batch_report):
    assert len(small_batch_report.points) == 3 * 300  # 3 iterations
    counts = small_batch_report.regime_counts()
    assert sum(counts.values()) == len(small_batch_report.points)


def test_ridge_intensity_reasonable(small_batch_report):
    # H100-class ridge point sits at a few hundred FLOPs/byte.
    assert 100 < small_batch_report.ridge_intensity < 1000


def test_gemms_are_compute_bound_at_large_batch(large_batch_report):
    gemm_points = [p for p in large_batch_report.points
                   if "gemm" in p.name and "bmm" not in p.name]
    compute = sum(1 for p in gemm_points
                  if p.regime is KernelRegime.COMPUTE_BOUND)
    assert compute > 0.8 * len(gemm_points)


def test_elementwise_memory_bound_at_large_batch(large_batch_report):
    elementwise = [p for p in large_batch_report.points
                   if "elementwise" in p.name]
    memory = sum(1 for p in elementwise
                 if p.regime is KernelRegime.MEMORY_BOUND)
    assert memory > 0.8 * len(elementwise)


def test_floor_population_shrinks_with_batch(small_batch_report,
                                             large_batch_report):
    assert (large_batch_report.floor_fraction()
            <= small_batch_report.floor_fraction())


def test_time_shares_sum_to_one(large_batch_report):
    shares = large_batch_report.regime_time_share()
    assert sum(shares.values()) == pytest.approx(1.0)


def test_arithmetic_intensity_sane(large_batch_report):
    for point in large_batch_report.points:
        if point.flops and point.bytes_moved:
            assert point.arithmetic_intensity > 0


def test_empty_trace_rejected():
    with pytest.raises(AnalysisError):
        classify_kernels(Trace(), INTEL_H100.gpu)


def test_imported_trace_preserves_work_terms(intel_profiler):
    result = intel_profiler.profile(BERT_BASE, batch_size=1, seq_len=128)
    # Simulator-emitted Chrome traces annotate flops/bytes_moved, so
    # roofline classification survives a round-trip.
    imported = chrome.loads(chrome.dumps(result.trace))
    report = classify_kernels(imported, INTEL_H100.gpu)
    assert len(report.points) > 0


def test_trace_without_work_terms_rejected(intel_profiler):
    import json

    result = intel_profiler.profile(BERT_BASE, batch_size=1, seq_len=128)
    # Real profiler traces carry no work terms; strip the simulator's
    # annotations to model one.
    events = json.loads(chrome.dumps(result.trace))
    for event in events["traceEvents"]:
        event.get("args", {}).pop("flops", None)
        event.get("args", {}).pop("bytes_moved", None)
    imported = chrome.loads(json.dumps(events))
    with pytest.raises(AnalysisError, match="work terms"):
        classify_kernels(imported, INTEL_H100.gpu)
