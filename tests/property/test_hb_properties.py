"""Property tests: causality-log well-formedness + H-rule soundness.

Two families:

* runs of randomly generated process interleavings on a real
  :class:`SimCore` produce *well-formed* logs (every resume was scheduled,
  rendezvous releases obey the max-law) that the hb pass certifies clean;
* logs with *known-injected* races (unordered same-time accesses, dropped
  grants, stripped tie keys, overlapping occupancy) are always flagged by
  the matching H rule — soundness of the detectors, not just absence of
  false positives.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.hb import check_causality
from repro.sim import CausalityLog, SimCore

_SCHEDULING = {"spawn", "suspend", "wake", "grant"}


@st.composite
def timer_plans(draw):
    """Per-process non-decreasing wake-up schedules."""
    count = draw(st.integers(1, 5))
    plans = []
    for _ in range(count):
        hops = draw(st.integers(0, 4))
        clock = 0.0
        plan = []
        for _ in range(hops):
            clock += draw(st.sampled_from([0.0, 5.0, 10.0, 25.0]))
            plan.append(clock)
        plans.append(plan)
    return plans


def _run_timers(plans):
    log = CausalityLog()
    core = SimCore(causality=log)

    def proc(plan):
        for at in plan:
            yield ("at", at)

    for plan in plans:
        core.spawn(proc(plan))
    core.run()
    return log


@given(plans=timer_plans())
@settings(max_examples=50, deadline=None)
def test_random_interleavings_produce_wellformed_clean_logs(plans):
    log = _run_timers(plans)
    assert check_causality(log) == []
    # Explicit well-formedness, independent of the checker's own logic:
    # every resume follows a scheduling event for its pid.
    pending = {}
    for event in log.events:
        if event.kind in _SCHEDULING:
            pending[event.pid] = pending.get(event.pid, 0) + 1
        elif event.kind == "resume":
            assert pending.get(event.pid, 0) > 0, event
            pending[event.pid] = 0
    # Same-time pops carry distinct tie keys (the H002 guarantee).
    ties = {}
    for event in log.events:
        if event.kind == "resume":
            assert event.tie is not None
            assert event.tie not in ties.setdefault(event.time_ns, set())
            ties[event.time_ns].add(event.tie)


@given(ready_times=st.lists(
    st.sampled_from([0.0, 10.0, 40.0, 90.0]), min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_rendezvous_release_obeys_max_law(ready_times):
    log = CausalityLog()
    core = SimCore(causality=log)

    def party(ready_ns):
        rdv = core.rendezvous("barrier", parties=len(ready_times))
        yield ("join", rdv, ready_ns)

    for ready_ns in ready_times:
        core.spawn(party(ready_ns))
    core.run()
    assert check_causality(log) == []
    releases = [e for e in log.events if e.kind == "release"]
    assert len(releases) == 1
    joined = [e.time_ns for e in log.events if e.kind == "join"]
    assert releases[0].time_ns == max(joined)
    assert len(joined) == len(ready_times)


@st.composite
def kv_holds(draw):
    """Random (blocks, acquire, release) holds at pairwise-distinct times.

    Times are distinct on purpose: two *independent* processes touching the
    pool at the same instant is a genuine H001 race (their order is
    tie-determined), which the injected-race tests cover — this strategy
    exercises the clean regime.
    """
    count = draw(st.integers(1, 5))
    release_order = draw(st.permutations(range(count)))
    return [(draw(st.integers(1, 4)), 5.0 * (index + 1),
             60.0 + 7.0 * release_order[index])
            for index in range(count)]


@given(holds=kv_holds())
@settings(max_examples=50, deadline=None)
def test_kv_interleavings_grant_without_lost_wakeups_or_leaks(holds):
    from repro.kvcache.pool import BlockPool
    from repro.kvcache.resource import KvCacheResource

    log = CausalityLog()
    core = SimCore(causality=log)
    resource = core.add_kv_resource(
        KvCacheResource(BlockPool(capacity_blocks=4), name="kv"))

    def holder(index, blocks, t_acquire, t_release):
        owner = f"seq-{index}"
        yield ("acquire", resource, owner, blocks, t_acquire)
        yield ("release", resource, owner, t_release)

    for index, (blocks, t_acquire, t_release) in enumerate(holds):
        core.spawn(holder(index, blocks, t_acquire, t_release))
    core.run()
    assert check_causality(log) == []
    grants = sum(1 for e in log.events if e.kind == "grant")
    assert grants == len(holds)


# ----------------------------------------------------------------------
# Injected races are always caught
# ----------------------------------------------------------------------
@given(plans=timer_plans(),
       at=st.sampled_from([5.0, 10.0, 25.0]),
       blocks=st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_injected_unordered_access_always_flagged(plans, at, blocks):
    log = _run_timers(plans)
    racer_a = len({e.pid for e in log.events if e.pid >= 0})
    racer_b = racer_a + 1
    for pid in (racer_a, racer_b):
        log.emit("spawn", 0.0, pid=pid)
        log.emit("resume", 0.0, pid=pid, tie=1000 + pid)
        log.emit("suspend", at, pid=pid, key="at")
        log.emit("resume", at, pid=pid, tie=2000 + pid)
    log.emit("grant", at, pid=racer_a, key="kv", owner="a", blocks=blocks)
    log.emit("grant", at, pid=racer_b, key="kv", owner="b", blocks=blocks)
    log.emit("free", at + 1.0, pid=racer_a, key="kv", owner="a",
             blocks=blocks)
    log.emit("free", at + 2.0, pid=racer_b, key="kv", owner="b",
             blocks=blocks)
    assert "H001" in {f.rule_id for f in check_causality(log)}


@given(capacity=st.integers(2, 8), data=st.data())
@settings(max_examples=50, deadline=None)
def test_injected_dropped_grant_is_a_lost_wakeup(capacity, data):
    wanted = data.draw(st.integers(1, capacity))
    log = CausalityLog()
    for pid in (0, 1):
        log.emit("spawn", 0.0, pid=pid)
        log.emit("resume", 0.0, pid=pid, tie=pid)
    log.emit("resource", 0.0, key="kv", blocks=capacity)
    log.emit("grant", 1.0, pid=0, key="kv", owner="a", blocks=capacity)
    log.emit("acquire", 2.0, pid=1, key="kv", owner="b", blocks=wanted)
    log.emit("free", 9.0, pid=0, key="kv", owner="a", blocks=capacity)
    # The grant that should answer pid 1's acquire is deliberately dropped.
    assert "H003" in {f.rule_id for f in check_causality(log)}


@given(plans=timer_plans())
@settings(max_examples=50, deadline=None)
def test_injected_stripped_tie_keys_always_flagged(plans):
    log = _run_timers(plans)
    groups = {}
    for event in log.events:
        if event.kind == "resume":
            groups.setdefault(event.time_ns, []).append(event)
    contested = [members for members in groups.values() if len(members) > 1]
    if not contested:
        return  # nothing to strip: the run had no same-time pops
    victim = contested[0][0]
    from dataclasses import replace

    log.events[log.events.index(victim)] = replace(victim, tie=None)
    assert "H002" in {f.rule_id for f in check_causality(log)}


@given(start=st.sampled_from([0.0, 10.0, 30.0]),
       length=st.sampled_from([5.0, 10.0]),
       overlap=st.sampled_from([1.0, 4.0]))
@settings(max_examples=50, deadline=None)
def test_injected_occupancy_overlap_always_flagged(start, length, overlap):
    log = CausalityLog()
    for pid in (0, 1):
        log.emit("spawn", 0.0, pid=pid)
        log.emit("resume", 0.0, pid=pid, tie=pid)
    log.emit("occupy", start, pid=0, key="device0.stream7",
             end_ns=start + length)
    log.emit("occupy", start + length - overlap, pid=1,
             key="device0.stream7", end_ns=start + length + overlap)
    assert "H005" in {f.rule_id for f in check_causality(log)}
