"""Extension — eager mixture-of-experts through SKIP.

Mixtral-8x7B's eager MoE loop (~2850 launches per prefill vs ~840 for the
dense Mistral-7B) is the most launch-tax-intensive workload in the catalog,
and its tiny routed token counts make every expert GEMM stream its full
weight matrix. The result stresses both of the paper's axes at once:
Grace's dispatch wall (CC loses at BS=1) and the bandwidth roofline (CC
wins once routing saturates).
"""

from _harness import BENCH_ENGINE, report, run_once
from repro.engine import run
from repro.hardware import GH200, INTEL_H100
from repro.skip import analyze_trace, classify_metrics, compute_metrics
from repro.units import ns_to_ms
from repro.viz import render_table
from repro.workloads import MISTRAL_7B, MIXTRAL_8X7B

BATCHES = (1, 8, 32)


def _characterize():
    grid = {}
    for platform in (INTEL_H100, GH200):
        for model in (MIXTRAL_8X7B, MISTRAL_7B):
            for batch in BATCHES:
                result = run(model, platform, batch_size=batch, seq_len=128,
                             config=BENCH_ENGINE)
                grid[(model.name, platform.name, batch)] = compute_metrics(
                    result.trace)
    # MoE's repeating expert bodies score PS = 255/256 (the final expert of
    # the final layer has a different continuation), so the recommendation
    # uses the paper's threshold knob T just below 1. The interesting number
    # is the instance-based speedup: a short chain recurs 8 experts x 32
    # layers per pass.
    analyses = analyze_trace(
        run(MIXTRAL_8X7B, INTEL_H100, batch_size=1, seq_len=128,
            config=BENCH_ENGINE).trace,
        threshold=0.99)
    fusion = max(analyses, key=lambda a: a.instance_speedup)
    return grid, fusion


def test_ext_moe_characterization(benchmark):
    grid, fusion = run_once(benchmark, _characterize)
    rows = []
    for (model, platform, batch), metrics in grid.items():
        rows.append([
            model, platform, batch,
            f"{ns_to_ms(metrics.inference_latency_ns):.1f}",
            f"{metrics.kernel_launches:.0f}",
            classify_metrics(metrics).value,
        ])
    report(render_table(
        ["model", "platform", "batch", "TTFT (ms)", "launches", "bound"],
        rows, title="Extension: eager MoE vs dense 7B (seq=128)"))
    report(f"Mixtral fusion recommendation (T=0.99): best instance-based "
           f"speedup {fusion.instance_speedup:.2f}x at L={fusion.length} "
           f"({fusion.fused_instances:.0f} chain instances per pass)")

    # Launch multiplication vs the dense twin.
    assert (grid[("mixtral-8x7b", "Intel+H100", 1)].kernel_launches
            > 3 * grid[("mistral-7b", "Intel+H100", 1)].kernel_launches)
    # GH200 loses low-batch MoE on the Grace dispatch wall...
    assert (grid[("mixtral-8x7b", "GH200", 1)].inference_latency_ns
            > 1.5 * grid[("mixtral-8x7b", "Intel+H100", 1)].inference_latency_ns)
    # ...and wins once batching fills the experts (bandwidth rules).
    assert (grid[("mixtral-8x7b", "GH200", 32)].inference_latency_ns
            < grid[("mixtral-8x7b", "Intel+H100", 32)].inference_latency_ns)
    # Fusion has plenty to harvest in a 2850-launch stream once the
    # recurring expert-body chains are admitted (T just below 1).
    assert fusion.instance_speedup > 2.0
    assert fusion.fused_instances > 100
