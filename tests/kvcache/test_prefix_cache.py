"""Copy-on-write shared-prefix caching: refcounts, accounting, parity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hardware import get_platform
from repro.kvcache import KvCacheConfig, KvPolicy
from repro.kvcache.manager import KvManager
from repro.kvcache.pool import BlockPool
from repro.serving.continuous import ContinuousBatchPolicy
from repro.serving.latency import LatencyModel
from repro.serving.requests import ServingRequest, poisson_requests
from repro.serving.runtime import simulate_serving
from repro.workloads import GPT2

GH200 = get_platform("GH200")


def manager(capacity=64):
    return KvManager(GPT2, GH200, KvPolicy.NONE, capacity,
                     prefix_caching=True)


# ----------------------------------------------------------------------
# Manager-level lifecycle
# ----------------------------------------------------------------------
def test_cold_miss_allocates_then_hits_share():
    kv = manager()
    # Cold: group inserted, nothing cached for the first request.
    assert kv.acquire_prefix(0, key=9, prefix_len=64, ts_ns=0.0) == 0
    assert kv.prefix_misses == 1 and kv.prefix_hits == 0
    held = kv.pool.shared_blocks(9)
    assert held == 64 // kv.block_tokens
    # Hit: the full shared blocks are skipped, refcount climbs.
    assert kv.acquire_prefix(1, key=9, prefix_len=64, ts_ns=1.0) == 64
    assert kv.prefix_hits == 1 and kv.cow_forks == 1
    assert kv.pool.shared_refs(9) == 2
    # One group, not two: no extra blocks were allocated by the hit.
    assert kv.pool.shared_allocated == held


def test_partial_tail_block_is_private():
    kv = manager()
    # 70 tokens at 16-token blocks -> 4 shared blocks (64 tokens); the
    # 6-token tail is the requester's copy-on-write fork.
    assert kv.shared_blocks_for(70) == 4
    assert kv.acquire_prefix(0, key=1, prefix_len=70, ts_ns=0.0) == 0
    assert kv.acquire_prefix(1, key=1, prefix_len=70, ts_ns=1.0) == 64


def test_sub_block_prefix_shares_nothing():
    kv = manager()
    assert kv.acquire_prefix(0, key=1, prefix_len=10, ts_ns=0.0) == 0
    assert not kv.pool.has_shared(1)
    assert kv.prefix_misses == 0 and kv.prefix_hits == 0


def test_release_keeps_blocks_warm_until_evicted():
    kv = manager()
    kv.acquire_prefix(0, key=5, prefix_len=32, ts_ns=0.0)
    blocks = kv.pool.shared_blocks(5)
    kv.release_prefix(0, ts_ns=1.0)
    assert kv.pool.shared_refs(5) == 0
    assert kv.pool.allocated == blocks          # warm, not freed
    assert kv.evict_idle_prefixes(kv.capacity_blocks, ts_ns=2.0)
    assert kv.pool.allocated == 0
    assert kv.prefix_evictions == 1


def test_flush_returns_idle_groups_and_flags_leaks():
    kv = manager()
    kv.acquire_prefix(0, key=1, prefix_len=32, ts_ns=0.0)
    kv.acquire_prefix(1, key=2, prefix_len=32, ts_ns=0.0)
    kv.release_prefix(0, ts_ns=1.0)
    with pytest.raises(SimulationError, match="still referenced"):
        kv.flush_prefixes(ts_ns=2.0)            # seq 1 never released
    kv.release_prefix(1, ts_ns=3.0)
    kv.flush_prefixes(ts_ns=4.0)
    assert kv.pool.allocated == 0


def test_acquire_requires_prefix_caching_and_unique_seq():
    plain = KvManager(GPT2, GH200, KvPolicy.RECOMPUTE, 64)
    with pytest.raises(SimulationError, match="not enabled"):
        plain.acquire_prefix(0, key=1, prefix_len=32, ts_ns=0.0)
    kv = manager()
    kv.acquire_prefix(0, key=1, prefix_len=32, ts_ns=0.0)
    with pytest.raises(SimulationError, match="already holds"):
        kv.acquire_prefix(0, key=2, prefix_len=32, ts_ns=1.0)


def test_cold_group_that_cannot_fit_returns_none():
    kv = manager(capacity=4)
    kv.acquire_prefix(0, key=1, prefix_len=64, ts_ns=0.0)   # 4 blocks
    assert kv.acquire_prefix(1, key=2, prefix_len=64, ts_ns=1.0) is None
    # Once the first group is idle it is evicted to make room.
    kv.release_prefix(0, ts_ns=2.0)
    assert kv.acquire_prefix(1, key=2, prefix_len=64, ts_ns=3.0) == 0


# ----------------------------------------------------------------------
# Pool-level refcount laws (what rule R003 replays)
# ----------------------------------------------------------------------
def test_double_free_raises():
    pool = BlockPool(16)
    pool.add_shared("p", 4)
    pool.deref_shared("p")
    with pytest.raises(SimulationError, match="double-free"):
        pool.deref_shared("p")


def test_evict_while_shared_raises():
    pool = BlockPool(16)
    pool.add_shared("p", 4)
    with pytest.raises(SimulationError, match="refcount"):
        pool.evict_shared("p")


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(1, 6)),
                min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_accounting_balances_over_any_fork_free_history(history):
    """Blocks allocated == live groups' blocks at every step; zero at end."""
    kv = manager(capacity=1024)
    seq = 0
    holders = {}                 # seq -> key
    for key, blocks in history:
        kv.acquire_prefix(seq, key, prefix_len=blocks * kv.block_tokens,
                          ts_ns=float(seq))
        holders[seq] = key
        seq += 1
        assert kv.pool.allocated == kv.pool.shared_allocated
        assert kv.pool.allocated <= kv.pool.capacity_blocks
    for s in sorted(holders):
        kv.release_prefix(s, ts_ns=float(seq + s))
    kv.flush_prefixes(ts_ns=1e9)
    assert kv.pool.allocated == 0
    assert kv.prefix_hits + kv.prefix_misses == len(history)


# ----------------------------------------------------------------------
# Serving-level parity and behaviour
# ----------------------------------------------------------------------
def _rows(result):
    return [(o.request.request_id, o.ttft_ns, o.completion_ns,
             o.batch_size, o.queue_ns, o.replica) for o in result.outcomes]


def test_untagged_stream_is_bit_identical_with_caching_on():
    """prefix_caching=True + no tags == the plain serving run, exactly."""
    requests = poisson_requests(rate_per_s=200.0, duration_s=0.2,
                                prompt_len=256, output_tokens=32, seed=4)
    latency = LatencyModel(platform=GH200)
    policy = ContinuousBatchPolicy(max_active=8)
    plain = simulate_serving(requests, GPT2, latency, policy=policy)
    cached = simulate_serving(
        requests, GPT2, latency, policy=policy,
        kv=KvCacheConfig(policy=KvPolicy.NONE, prefix_caching=True))
    assert _rows(plain) == _rows(cached)


def _tagged_stream(n=8, prefix_len=128, gap_ns=4e6):
    return [ServingRequest(request_id=i, arrival_ns=i * gap_ns,
                           prompt_len=prefix_len + 64, output_tokens=4,
                           prefix_hash=1, prefix_len=prefix_len)
            for i in range(n)]


def test_shared_prefix_hits_cut_ttft():
    requests = _tagged_stream()
    latency = LatencyModel(platform=GH200)
    run = simulate_serving(
        requests, GPT2, latency, policy=ContinuousBatchPolicy(max_active=8),
        kv=KvCacheConfig(policy=KvPolicy.NONE, prefix_caching=True))
    assert len(run.outcomes) == len(requests)
    (kv_stats,) = run.kv
    assert kv_stats.prefix_misses == 1                 # first arrival warms
    assert kv_stats.prefix_hits == len(requests) - 1
    by_id = {o.request.request_id: o for o in run.outcomes}
    # Every hit prefilled only the 64-token suffix: strictly cheaper than
    # the cold miss, which paid the full 192-token prompt. TTFT includes
    # queue wait, so compare pure service time (ttft - queue).
    service = lambda o: o.ttft_ns - o.queue_ns
    for rid in range(1, len(requests)):
        assert service(by_id[rid]) < service(by_id[0])
