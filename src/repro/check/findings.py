"""Finding model shared by all ``repro.check`` passes.

Every pass reports :class:`Finding` records — (rule id, severity, location,
message) — instead of raising, so one run can surface every violation at
once and the CLI can emit them machine-readably. Rule ids are stable
contract: tests, CI, and docs reference them, so a rule keeps its id for
life and retired ids are never reused.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail ``repro check`` (exit code 1): the artifact
    violates an invariant downstream analyses rely on. ``WARNING`` findings
    are reported but do not fail the run.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One registered check rule."""

    rule_id: str
    pass_name: str
    summary: str


#: Every rule any pass can emit, keyed by id. Populated at import time by the
#: pass modules via :func:`register_rule`; docs and tests enumerate it.
RULES: dict[str, Rule] = {}


def register_rule(rule_id: str, pass_name: str, summary: str) -> str:
    """Register a rule id (idempotent for identical definitions)."""
    existing = RULES.get(rule_id)
    if existing is not None and existing != Rule(rule_id, pass_name, summary):
        raise ValueError(f"rule id {rule_id} registered twice with "
                         f"different definitions")
    RULES[rule_id] = Rule(rule_id, pass_name, summary)
    return rule_id


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    Attributes:
        rule_id: Stable rule identifier (``G001``, ``S002``, ...).
        severity: Whether the finding fails the check run.
        location: Where the violation is — a ``file:line`` for the code
            pass, an op label / kernel name for the graph pass, a device or
            collective key for the schedule pass, an event description for
            the trace pass.
        message: Human-readable explanation with the observed values.
    """

    rule_id: str
    severity: Severity
    location: str
    message: str

    def __post_init__(self) -> None:
        if self.rule_id not in RULES:
            raise ValueError(f"unregistered rule id: {self.rule_id}")

    @property
    def pass_name(self) -> str:
        return RULES[self.rule_id].pass_name

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule_id,
            "pass": self.pass_name,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.severity.value.upper():7s} {self.rule_id} "
                f"[{self.location}] {self.message}")


@dataclass
class CheckReport:
    """All findings from one or more check passes."""

    findings: list[Finding] = field(default_factory=list)
    #: Artifacts the run examined ("gpt2 tp=2", "src/repro/sim/core.py", ...)
    #: so a clean report still shows what was covered.
    checked: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity finding was reported."""
        return not self.errors

    def extend(self, findings: list[Finding], checked: str | None = None) -> None:
        self.findings.extend(findings)
        if checked is not None:
            self.checked.append(checked)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checked": list(self.checked),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        verdict = "clean" if self.ok else f"{len(self.errors)} error(s)"
        lines.append(f"checked {len(self.checked)} artifact(s): {verdict}")
        return "\n".join(lines)
