"""Batch-sweep harness."""

import pytest

from repro.analysis import run_batch_sweep
from repro.engine import EngineConfig
from repro.errors import AnalysisError
from repro.hardware import INTEL_H100
from repro.workloads import GPT2


@pytest.fixture(scope="module")
def small_sweep():
    return run_batch_sweep(GPT2, (INTEL_H100,), (1, 2, 4), seq_len=128,
                           engine_config=EngineConfig(iterations=1))


def test_sweep_has_all_points(small_sweep):
    assert len(small_sweep.points) == 3
    assert small_sweep.platforms() == ["Intel+H100"]


def test_point_lookup(small_sweep):
    point = small_sweep.point("Intel+H100", 2)
    assert point.batch_size == 2
    assert point.ttft_ns > 0


def test_missing_point_raises(small_sweep):
    with pytest.raises(AnalysisError):
        small_sweep.point("Intel+H100", 99)
    with pytest.raises(AnalysisError):
        small_sweep.point("GH200", 1)


def test_series_extraction(small_sweep):
    ttft = small_sweep.ttft_series("Intel+H100")
    tklqt = small_sweep.tklqt_series("Intel+H100")
    assert len(ttft) == len(tklqt) == 3
    assert all(v > 0 for v in ttft)


def test_ttft_nondecreasing_in_batch(small_sweep):
    ttft = small_sweep.ttft_series("Intel+H100")
    assert ttft == sorted(ttft)


def test_idle_series_bounded_by_latency(small_sweep):
    il = small_sweep.ttft_series("Intel+H100")
    for idle in (small_sweep.gpu_idle_series("Intel+H100"),
                 small_sweep.cpu_idle_series("Intel+H100")):
        assert all(0 <= v <= total for v, total in zip(idle, il))


def test_transition_from_sweep(bert_sweep):
    assert bert_sweep.transition("Intel+H100").batch_size == 8
    assert bert_sweep.transition("GH200").batch_size == 32


def test_empty_inputs_rejected():
    with pytest.raises(AnalysisError):
        run_batch_sweep(GPT2, (), (1,))
    with pytest.raises(AnalysisError):
        run_batch_sweep(GPT2, (INTEL_H100,), ())
