"""Trace round-trip: SKIP analyses on Chrome-trace files.

The real SKIP consumes PyTorch Profiler traces; this library's analyses run
on the same Chrome-trace JSON format. The example simulates a run, exports
the trace, re-imports it as if it came from PyTorch Profiler, and shows that
every metric survives the round trip.

Usage:
    python examples/trace_import.py [output.json]
"""

import sys

from repro import BERT_BASE, INTEL_H100, SkipProfiler
from repro.skip import profile_report
from repro.trace import chrome


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "/tmp/skip_trace.json"

    profiler = SkipProfiler(INTEL_H100)
    original = profiler.profile(BERT_BASE, batch_size=8, seq_len=512)
    chrome.dump(original.trace, path)
    print(f"Exported {len(original.trace.kernels)} kernel events to {path}\n")

    imported = SkipProfiler.analyze(chrome.load(path))
    print(profile_report(imported, title=f"re-analyzed from {path}"))

    drift = abs(imported.metrics.tklqt_ns - original.metrics.tklqt_ns)
    print(f"\nTKLQT drift across the round trip: {drift:.3f} ns")
    assert drift < 1.0, "round trip must preserve metrics"


if __name__ == "__main__":
    main()
