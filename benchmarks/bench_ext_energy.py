"""Extension — energy per token across coupling paradigms.

Table IV's platforms sit in different power classes (A100 500 W, H100 PCIe
350 W, GH200 module ~900 W). Combining the activity-based power model with
the profiled busy/idle times answers the efficiency question the latency
figures leave open: who wins on joules per token, and where?
"""

from _harness import BENCH_ENGINE, report, run_once
from repro.engine import run
from repro.hardware import AMD_A100, GH200, INTEL_H100, energy_of, get_power_model
from repro.skip import compute_metrics
from repro.viz import render_table
from repro.workloads import BERT_BASE

PLATFORMS = (INTEL_H100, AMD_A100, GH200)
BATCHES = (1, 16, 128)
SEQ = 512


def _energy_grid():
    grid = {}
    for platform in PLATFORMS:
        power = get_power_model(platform.name)
        for batch in BATCHES:
            result = run(BERT_BASE, platform, batch_size=batch, seq_len=SEQ,
                         config=BENCH_ENGINE)
            metrics = compute_metrics(result.trace)
            grid[(platform.name, batch)] = energy_of(metrics, power)
    return grid


def test_ext_energy_per_token(benchmark):
    grid = run_once(benchmark, _energy_grid)
    rows = []
    for (platform, batch), energy in grid.items():
        tokens = batch * SEQ
        rows.append([
            platform, batch,
            f"{energy.total_j:.2f}",
            f"{1e3 * energy.energy_per_token_j(tokens):.3f}",
            f"{energy.average_power_w:.0f}",
        ])
    report(render_table(
        ["platform", "batch", "energy/inference (J)", "mJ/token",
         "avg power (W)"],
        rows, title="Extension: BERT prefill energy (activity-based model)"))

    # Energy per token falls with batch on every platform (fixed CPU cost
    # amortizes, idle burn shrinks).
    for platform in PLATFORMS:
        per_token = [grid[(platform.name, b)].energy_per_token_j(b * SEQ)
                     for b in BATCHES]
        assert per_token[0] > per_token[1] > per_token[2]
    # At BS=1 the GH200 burns the most joules per token: highest power
    # class *and* longest latency (the Grace bottleneck, in energy terms).
    bs1 = {p.name: grid[(p.name, 1)].energy_per_token_j(SEQ)
           for p in PLATFORMS}
    assert max(bs1, key=bs1.get) == "GH200"
    # At BS=128 GH200's 2x-faster completion beats its power premium over
    # the A100 system.
    bs128 = {p.name: grid[(p.name, 128)].energy_per_token_j(128 * SEQ)
             for p in PLATFORMS}
    assert bs128["GH200"] < bs128["AMD+A100"]
