"""Static-batching serving loop."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import INTEL_H100
from repro.serving import (
    LatencyModel,
    StaticBatchPolicy,
    poisson_requests,
    simulate_static_batching,
)
from repro.workloads import GPT2


@pytest.fixture(scope="module")
def latency():
    return LatencyModel(INTEL_H100)


@pytest.fixture(scope="module")
def stream():
    return poisson_requests(rate_per_s=40, duration_s=1.0, prompt_len=256,
                            output_tokens=8, seed=7)


def test_every_request_served(latency, stream):
    report = simulate_static_batching(stream, GPT2, latency)
    assert len(report.outcomes) == len(stream)
    served = {o.request.request_id for o in report.outcomes}
    assert served == {r.request_id for r in stream}


def test_latency_ordering_invariants(latency, stream):
    report = simulate_static_batching(stream, GPT2, latency)
    for outcome in report.outcomes:
        assert outcome.queue_ns >= 0
        assert outcome.ttft_ns > outcome.queue_ns
        assert outcome.completion_ns >= outcome.ttft_ns


def test_bs1_policy_minimizes_ttft_but_costs_throughput(latency, stream):
    single = simulate_static_batching(stream, GPT2, latency,
                                      StaticBatchPolicy(max_batch_size=1))
    batched = simulate_static_batching(stream, GPT2, latency,
                                       StaticBatchPolicy(max_batch_size=16))
    assert batched.mean_batch_size() > single.mean_batch_size()
    assert single.mean_batch_size() == 1.0
    # Batch-16 prefill is slower per call than BS=1 prefill.
    bs1_ttft = latency.ttft_ns(GPT2, 1, 256)
    bs16_ttft = latency.ttft_ns(GPT2, 16, 256)
    assert bs16_ttft > bs1_ttft


def test_batches_respect_max_size(latency, stream):
    report = simulate_static_batching(stream, GPT2, latency,
                                      StaticBatchPolicy(max_batch_size=4))
    assert all(o.batch_size <= 4 for o in report.outcomes)


def test_report_statistics(latency, stream):
    report = simulate_static_batching(stream, GPT2, latency)
    assert report.p99_ttft_ns() >= report.mean_ttft_ns() * 0.5
    assert report.mean_completion_ns() >= report.mean_ttft_ns()
    assert report.throughput_tokens_per_s() > 0


def test_empty_inputs_rejected(latency):
    with pytest.raises(ConfigurationError):
        simulate_static_batching([], GPT2, latency)


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        StaticBatchPolicy(max_batch_size=0)
    with pytest.raises(ConfigurationError):
        StaticBatchPolicy(max_wait_ns=-1.0)
