"""Property tests for the simulation core and tensor parallelism.

The load-bearing property is TP=1 parity: the event-driven core must
reproduce the legacy single-threaded executor's trace bit-for-bit on any
shape, which is what keeps every golden (Fig. 6, Fig. 8, Table V) valid
after the refactor.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig, ExecutionMode, TPConfig, run
from repro.engine.legacy import run_legacy
from repro.hardware import GH200, INTEL_H100
from repro.hardware.interconnect import InterconnectSpec
from repro.sim import LinkResource
from repro.skip import compute_metrics
from repro.workloads import BERT_BASE, GPT2, LLAMA_3_2_1B

FAST = EngineConfig(iterations=1)
MODELS = [BERT_BASE, GPT2, LLAMA_3_2_1B]


def _events(trace):
    """Every comparable field of every event, in a canonical order."""
    ops = [(o.name, o.ts, o.dur, o.tid) for o in trace.operators]
    calls = [(c.name, c.ts, c.dur, c.tid, c.correlation_id)
             for c in trace.runtime_calls]
    kernels = [(k.name, k.ts, k.dur, k.stream, k.device, k.correlation_id,
                k.flops, k.bytes_moved) for k in trace.kernels]
    marks = [(m.index, m.ts, m.ts_end) for m in trace.iterations]
    return ops, calls, kernels, marks


@given(
    model=st.sampled_from(MODELS),
    platform=st.sampled_from([INTEL_H100, GH200]),
    batch_size=st.sampled_from([1, 2, 8, 32]),
    seq_len=st.sampled_from([16, 64, 256]),
    mode=st.sampled_from([ExecutionMode.EAGER, ExecutionMode.COMPILE_DEFAULT,
                          ExecutionMode.COMPILE_REDUCE_OVERHEAD]),
)
@settings(max_examples=25, deadline=None)
def test_tp1_trace_identical_to_legacy_executor(model, platform, batch_size,
                                                seq_len, mode):
    new = run(model, platform, batch_size=batch_size, seq_len=seq_len,
              mode=mode, config=FAST, tp=TPConfig(degree=1)).trace
    legacy = run_legacy(model, platform, batch_size=batch_size,
                        seq_len=seq_len, mode=mode, config=FAST)
    assert _events(new) == _events(legacy)
    assert new.metadata == legacy.metadata


@given(
    bandwidth=st.floats(1.0, 1000.0),
    latency=st.floats(0.0, 10_000.0),
    small=st.floats(1.0, 1e8),
    growth=st.floats(1.0, 100.0),
    world=st.integers(2, 16),
)
@settings(max_examples=100, deadline=None)
def test_allreduce_monotone_in_message_size(bandwidth, latency, small,
                                            growth, world):
    link = LinkResource(spec=InterconnectSpec(
        name="t", bandwidth_gbs=bandwidth, base_latency_ns=latency,
        submission_ns=0.0))
    assert (link.allreduce_ns(small * growth, world)
            >= link.allreduce_ns(small, world))


@given(
    bandwidth=st.floats(1.0, 1000.0),
    speedup=st.floats(1.0, 100.0),
    message=st.floats(1.0, 1e9),
    world=st.integers(2, 16),
)
@settings(max_examples=100, deadline=None)
def test_allreduce_non_increasing_in_bandwidth(bandwidth, speedup, message,
                                               world):
    def at(gbs):
        return LinkResource(spec=InterconnectSpec(
            name="t", bandwidth_gbs=gbs, base_latency_ns=1000.0,
            submission_ns=0.0)).allreduce_ns(message, world)

    assert at(bandwidth * speedup) <= at(bandwidth)


@given(
    model=st.sampled_from([BERT_BASE, GPT2]),
    batch_size=st.sampled_from([1, 4, 16]),
    degree=st.sampled_from([2, 4]),
)
@settings(max_examples=10, deadline=None)
def test_per_device_tklqt_sums_to_aggregate(model, batch_size, degree):
    result = run(model, INTEL_H100, batch_size=batch_size, seq_len=64,
                 config=FAST, tp=TPConfig(degree=degree))
    metrics = compute_metrics(result.trace)
    assert len(metrics.devices) == degree
    assert math.isclose(sum(d.tklqt_ns for d in metrics.devices),
                        metrics.tklqt_ns, rel_tol=1e-9)
    assert math.isclose(sum(d.kernel_launches for d in metrics.devices),
                        metrics.kernel_launches, rel_tol=1e-9)
    assert math.isclose(sum(d.gpu_busy_ns for d in metrics.devices),
                        metrics.gpu_busy_ns, rel_tol=1e-9)
