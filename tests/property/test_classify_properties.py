"""Property-based tests for transition detection and the latency-curve
baseline on synthetic sweeps."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import classify_latency_curve
from repro.skip import Boundedness, find_transition


@st.composite
def flat_then_exploding(draw):
    """A TKLQT curve that is flat for a prefix, then multiplies per step."""
    n = draw(st.integers(3, 8))
    batches = [2 ** i for i in range(n)]
    plateau = draw(st.floats(1e3, 1e6))
    knee = draw(st.integers(1, n - 1))
    values = []
    level = plateau
    for i in range(n):
        if i < knee:
            # Jitter and the per-step multiplier must keep the knee
            # unambiguous under the 10x rule: the knee jumps >= 13x the true
            # plateau while pre-knee points stay within 1.15x of it, so
            # knee > 10 * observed_plateau always holds.
            jitter = draw(st.floats(0.9, 1.15))
            values.append(plateau * jitter)
        else:
            level = max(level, plateau) * draw(st.floats(13.0, 40.0))
            values.append(level)
    return batches, values, batches[knee]


@given(curve=flat_then_exploding())
@settings(max_examples=120, deadline=None)
def test_transition_found_at_the_knee(curve):
    batches, values, knee_batch = curve
    transition = find_transition(batches, values)
    assert transition.found
    assert transition.batch_size == knee_batch
    # Classification is consistent with the found point.
    for batch in batches:
        expected = (Boundedness.CPU_BOUND if batch < knee_batch
                    else Boundedness.GPU_BOUND)
        assert transition.boundedness_at(batch) is expected


@given(values=st.lists(st.floats(1e3, 1e4), min_size=2, max_size=8))
@settings(max_examples=100, deadline=None)
def test_bounded_jitter_never_triggers(values):
    """Any curve whose values stay within a 10x band has no transition."""
    batches = [2 ** i for i in range(len(values))]
    lo = min(values)
    clipped = [min(v, lo * 9.99) for v in values]
    transition = find_transition(batches, clipped)
    assert not transition.found


@given(curve=flat_then_exploding())
@settings(max_examples=60, deadline=None)
def test_framework_tax_agrees_on_synthetic_curves(curve):
    """On a flat-then-exploding latency curve the baseline classifier also
    fires at or before the knee (it is more sensitive: 1.4x growth)."""
    batches, values, knee_batch = curve
    result = classify_latency_curve(batches, values)
    assert result.transition_batch_size is not None
    assert result.transition_batch_size <= knee_batch
