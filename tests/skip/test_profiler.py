"""SkipProfiler facade."""

import pytest

from repro.engine import EngineConfig, ExecutionMode
from repro.hardware import INTEL_H100
from repro.skip import Boundedness, SkipProfiler
from repro.workloads import GPT2, LLAMA_3_2_1B, Phase


def test_profile_produces_full_result(intel_profiler):
    result = intel_profiler.profile(GPT2, batch_size=1, seq_len=128)
    assert result.metrics.kernel_launches > 0
    assert result.depgraph.launches
    assert result.run_result is not None
    assert result.trace.metadata["model"] == "gpt2"


def test_boundedness_property(intel_profiler):
    result = intel_profiler.profile(GPT2, batch_size=1, seq_len=128)
    assert result.boundedness in (Boundedness.CPU_BOUND, Boundedness.GPU_BOUND)


def test_recommend_fusions_shortcut(gpt2_profile):
    analyses = gpt2_profile.recommend_fusions(lengths=[2, 4])
    assert [a.length for a in analyses] == [2, 4]


def test_fusion_plan_picks_best_length(gpt2_profile):
    plan = gpt2_profile.fusion_plan()
    assert plan is not None
    # best idealized speedup for GPT-2 is at L=256 (Fig. 8)
    assert max(len(c) for c in plan.chains) == 256


def test_profile_then_refuse_roundtrip(intel_profiler):
    """End-to-end: recommend chains, re-run under PROXIMITY_FUSED, and
    check the launch count drops accordingly."""
    baseline = intel_profiler.profile(GPT2, batch_size=1, seq_len=512)
    plan = baseline.fusion_plan(lengths=[64])
    assert plan is not None
    fused = intel_profiler.profile(GPT2, batch_size=1, seq_len=512,
                                   mode=ExecutionMode.PROXIMITY_FUSED,
                                   fusion_plan=plan)
    assert fused.metrics.kernel_launches < baseline.metrics.kernel_launches
    assert fused.metrics.inference_latency_ns < baseline.metrics.inference_latency_ns


def test_decode_phase_profile(intel_profiler):
    result = intel_profiler.profile(LLAMA_3_2_1B, batch_size=1, seq_len=1,
                                    phase=Phase.DECODE, context_len=256)
    assert result.trace.metadata["phase"] == "decode"
    assert result.metrics.kernel_launches > 0


def test_analyze_static_method_on_existing_trace(gpt2_profile):
    reanalyzed = SkipProfiler.analyze(gpt2_profile.trace)
    assert reanalyzed.metrics.tklqt_ns == pytest.approx(
        gpt2_profile.metrics.tklqt_ns)
    assert reanalyzed.run_result is None


def test_custom_engine_config():
    profiler = SkipProfiler(INTEL_H100, EngineConfig(iterations=2))
    result = profiler.profile(GPT2, batch_size=1, seq_len=128)
    assert len(result.metrics.iterations) == 2
