"""Reproduction scorecard: every paper anchor, checked programmatically.

``python -m repro validate`` (or :func:`run_scorecard`) re-derives the
paper's headline numbers from the simulator and reports paper-vs-measured
with a tolerance verdict per anchor. The benchmark suite asserts the same
facts; this module is the one-shot, human-readable version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis import find_crossover, run_batch_sweep
from repro.engine import EngineConfig, ExecutionMode, run
from repro.hardware import AMD_A100, GH200, INTEL_H100
from repro.skip import analyze_trace, best_speedup, compute_metrics
from repro.workloads import BERT_BASE, GEMMA_2B, GPT2, LLAMA_3_2_1B, XLM_ROBERTA_BASE

_FAST = EngineConfig(iterations=1)
_BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class Anchor:
    """One paper-vs-measured check."""

    experiment: str
    description: str
    paper_value: float
    measured_value: float
    tolerance: float  # relative

    @property
    def passed(self) -> bool:
        if self.paper_value == 0:
            return self.measured_value == 0
        return (abs(self.measured_value - self.paper_value)
                <= self.tolerance * abs(self.paper_value))

    @property
    def deviation(self) -> float:
        if self.paper_value == 0:
            return 0.0
        return self.measured_value / self.paper_value - 1.0


@dataclass
class Scorecard:
    """All anchors plus a summary."""

    anchors: list[Anchor]

    @property
    def passed(self) -> int:
        return sum(1 for a in self.anchors if a.passed)

    @property
    def total(self) -> int:
        return len(self.anchors)

    def failures(self) -> list[Anchor]:
        return [a for a in self.anchors if not a.passed]

    def render(self) -> str:
        lines = [
            f"reproduction scorecard: {self.passed}/{self.total} anchors "
            "within tolerance",
            f"{'experiment':10s} {'anchor':48s} {'paper':>9} {'ours':>9} "
            f"{'dev':>7}  verdict",
        ]
        lines.append("-" * len(lines[1]))
        for anchor in self.anchors:
            verdict = "ok" if anchor.passed else "DEVIATES"
            lines.append(
                f"{anchor.experiment:10s} {anchor.description:48s} "
                f"{anchor.paper_value:>9.3f} {anchor.measured_value:>9.3f} "
                f"{100 * anchor.deviation:>+6.1f}%  {verdict}"
            )
        return "\n".join(lines)


def run_scorecard(progress: Callable[[str], None] | None = None) -> Scorecard:
    """Recompute every anchor (takes a few seconds of simulation)."""
    say = progress or (lambda _msg: None)
    anchors: list[Anchor] = []

    say("Table V: nullKernel launch path")
    for platform, paper in ((AMD_A100, 2260.5), (INTEL_H100, 2374.6),
                            (GH200, 2771.6)):
        anchors.append(Anchor("Table V", f"{platform.name} launch overhead (ns)",
                              paper, platform.launch_latency_ns, 0.001))

    say("Fig. 6 / Fig. 10: encoder sweep")
    bert = run_batch_sweep(BERT_BASE, (INTEL_H100, AMD_A100, GH200), _BATCHES,
                           engine_config=_FAST)
    anchors.append(Anchor("Fig. 6", "encoder star, Intel+H100 (BS)", 8,
                          bert.transition("Intel+H100").batch_size or -1, 0.0))
    anchors.append(Anchor("Fig. 6", "encoder star, GH200 (BS)", 32,
                          bert.transition("GH200").batch_size or -1, 0.0))
    bs1 = {p: bert.point(p, 1).ttft_ns for p in ("Intel+H100", "AMD+A100",
                                                 "GH200")}
    anchors.append(Anchor("Fig. 10a", "BERT BS=1 GH200/Intel slowdown", 2.8,
                          bs1["GH200"] / bs1["Intel+H100"], 0.25))
    anchors.append(Anchor("Fig. 10a", "BERT BS=1 GH200/AMD slowdown", 1.9,
                          bs1["GH200"] / bs1["AMD+A100"], 0.15))
    cp = find_crossover(bert, "GH200", "Intel+H100")
    anchors.append(Anchor("Fig. 10a", "BERT crossover point (BS)", 16,
                          cp.batch_size or -1, 0.0))
    anchors.append(Anchor("Fig. 10a", "BERT BS=64 speedup vs Intel", 1.6,
                          cp.speedup_at(bert.batch_sizes, 64), 0.3))
    cp_amd = find_crossover(bert, "GH200", "AMD+A100")
    anchors.append(Anchor("Fig. 10a", "BERT BS=64 speedup vs AMD", 2.4,
                          cp_amd.speedup_at(bert.batch_sizes, 64), 0.15))

    say("Fig. 11: Llama sweep")
    llama = run_batch_sweep(LLAMA_3_2_1B, (INTEL_H100, AMD_A100, GH200),
                            _BATCHES, engine_config=_FAST)
    cp = find_crossover(llama, "GH200", "Intel+H100")
    cp_amd = find_crossover(llama, "GH200", "AMD+A100")
    anchors.append(Anchor("Fig. 11a", "Llama BS=16 speedup vs Intel", 1.9,
                          cp.speedup_at(llama.batch_sizes, 16), 0.15))
    anchors.append(Anchor("Fig. 11a", "Llama BS=16 speedup vs AMD", 2.7,
                          cp_amd.speedup_at(llama.batch_sizes, 16), 0.15))

    say("Fig. 8: fusion speedups")
    for model, paper in ((GPT2, 2.7), (XLM_ROBERTA_BASE, 6.8)):
        result = run(model, INTEL_H100, batch_size=1, seq_len=512, config=_FAST)
        best = best_speedup(analyze_trace(result.trace))
        anchors.append(Anchor("Fig. 8", f"{model.name} ideal speedup @L=256",
                              paper, best.ideal_speedup, 0.15))

    say("Table I: torch.compile ladder")
    eager_il = compute_metrics(run(GEMMA_2B, INTEL_H100, 1, 1024,
                                   config=_FAST).trace).inference_latency_ns
    for mode, paper_compile, paper_speedup in (
        (ExecutionMode.COMPILE_DEFAULT, 6.2844, 1.203),
        (ExecutionMode.COMPILE_REDUCE_OVERHEAD, 12.7469, 1.2394),
        (ExecutionMode.COMPILE_MAX_AUTOTUNE, 387.3, 1.317),
    ):
        result = run(GEMMA_2B, INTEL_H100, 1, 1024, mode=mode, config=_FAST)
        il = compute_metrics(result.trace).inference_latency_ns
        anchors.append(Anchor("Table I", f"{mode.value} compile time (s)",
                              paper_compile, result.compile_report.total_s,
                              0.15))
        anchors.append(Anchor("Table I", f"{mode.value} speedup",
                              paper_speedup, eager_il / il, 0.1))

    return Scorecard(anchors=anchors)
