"""Balanced-utilization ("sweet spot") regions (Section V-D).

The paper's contribution 5: each application-system pair has a batch-size
region where neither PU sits idle — below it the GPU idles (CPU-bound), above
it the CPU idles (GPU-bound). Operating in this region maximizes system
efficiency. The paper reads these regions off the idle-time curves:
encoders LC BS=4-8 / CC BS=16-32; decoders LC BS=2-4 / CC BS=4-8.

We define the region as the batch sizes where both idle fractions
(idle time / inference latency) stay below a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sweep import SweepResult
from repro.errors import AnalysisError

#: Default ceiling on either PU's idle share inside the balanced region.
DEFAULT_IDLE_THRESHOLD = 0.55


@dataclass(frozen=True)
class BalancedRegion:
    """The contiguous batch-size range where both PUs are well utilized."""

    platform: str
    low: int | None
    high: int | None
    gpu_idle_fraction: tuple[float, ...]
    cpu_idle_fraction: tuple[float, ...]

    @property
    def found(self) -> bool:
        return self.low is not None

    def __contains__(self, batch_size: int) -> bool:
        if self.low is None or self.high is None:
            return False
        return self.low <= batch_size <= self.high


def find_balanced_region(sweep: SweepResult, platform: str,
                         idle_threshold: float = DEFAULT_IDLE_THRESHOLD
                         ) -> BalancedRegion:
    """Locate the balanced batch-size region for one platform.

    Args:
        sweep: A completed batch sweep.
        platform: Platform name in the sweep.
        idle_threshold: Maximum allowed idle fraction for either PU.
    """
    if not (0 < idle_threshold < 1):
        raise AnalysisError("idle_threshold must be in (0, 1)")

    il = sweep.ttft_series(platform)
    gpu_idle = [g / total for g, total in zip(sweep.gpu_idle_series(platform), il)]
    cpu_idle = [c / total for c, total in zip(sweep.cpu_idle_series(platform), il)]

    balanced = [
        batch
        for batch, g, c in zip(sweep.batch_sizes, gpu_idle, cpu_idle)
        if g <= idle_threshold and c <= idle_threshold
    ]
    if balanced:
        low, high = min(balanced), max(balanced)
    else:
        low = high = None
    return BalancedRegion(
        platform=platform,
        low=low,
        high=high,
        gpu_idle_fraction=tuple(gpu_idle),
        cpu_idle_fraction=tuple(cpu_idle),
    )
