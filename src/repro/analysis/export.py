"""Result export: sweeps and profiles to JSON / CSV for external plotting."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any

from repro.analysis.sweep import SweepResult
from repro.errors import AnalysisError
from repro.skip.metrics import SkipMetrics

#: Metric fields exported per sweep point.
_METRIC_FIELDS = (
    "inference_latency_ns",
    "tklqt_ns",
    "akd_ns",
    "gpu_idle_ns",
    "cpu_idle_ns",
    "gpu_busy_ns",
    "cpu_busy_ns",
    "kernel_launches",
)


def metrics_to_dict(metrics: SkipMetrics) -> dict[str, float]:
    """Flatten the averaged metric fields of one profile."""
    return {field: getattr(metrics, field) for field in _METRIC_FIELDS}


def sweep_to_records(sweep: SweepResult) -> list[dict[str, Any]]:
    """One flat record per (platform, batch) sweep point."""
    records = []
    for point in sweep.points:
        record: dict[str, Any] = {
            "model": point.model,
            "platform": point.platform,
            "batch_size": point.batch_size,
        }
        record.update(metrics_to_dict(point.metrics))
        records.append(record)
    return records


def sweep_to_json(sweep: SweepResult, path: str | Path | None = None) -> str:
    """Serialize a sweep to JSON (optionally writing to ``path``)."""
    payload = {
        "model": sweep.model,
        "batch_sizes": list(sweep.batch_sizes),
        "points": sweep_to_records(sweep),
    }
    text = json.dumps(payload, indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def sweep_to_csv(sweep: SweepResult, path: str | Path | None = None) -> str:
    """Serialize a sweep to CSV (optionally writing to ``path``)."""
    records = sweep_to_records(sweep)
    if not records:
        raise AnalysisError("sweep has no points")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(records[0]),
                            lineterminator="\n")
    writer.writeheader()
    writer.writerows(records)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def load_sweep_json(path: str | Path) -> dict[str, Any]:
    """Load a previously exported sweep payload."""
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"invalid sweep JSON: {exc}") from exc
