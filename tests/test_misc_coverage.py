"""Coverage for small public surfaces not exercised elsewhere."""

import pytest

from repro.engine import GpuStream
from repro.errors import AnalysisError
from repro.trace.trace import concat_kernel_names


def test_concat_kernel_names_orders_by_correlation(gpt2_profile):
    kernels = gpt2_profile.trace.kernels_in_iteration(0)
    names = concat_kernel_names(kernels)
    assert len(names) == len(kernels)
    ordered = sorted(kernels, key=lambda k: k.correlation_id)
    assert names == [k.name for k in ordered]


def test_stream_pending_at_counts_backlog():
    stream = GpuStream()
    stream.submit(0.0, 10.0)
    stream.submit(0.0, 10.0)   # starts at 10
    stream.submit(0.0, 10.0)   # starts at 20
    assert stream.pending_at(-1.0) == 3
    assert stream.pending_at(0.0) == 2
    assert stream.pending_at(15.0) == 1
    assert stream.pending_at(100.0) == 0


def test_latency_vs_cpu_scale_empty_rejected():
    from repro.analysis import latency_vs_cpu_scale
    from repro.hardware import GH200
    from repro.workloads import GPT2
    with pytest.raises(AnalysisError):
        latency_vs_cpu_scale(GPT2, GH200, scales=())


def test_top_k_slices(gpt2_profile):
    metrics = gpt2_profile.metrics
    assert len(metrics.top_k(3)) == 3
    assert len(metrics.top_k(10_000)) == len(metrics.top_kernels)


def test_mining_longer_than_segment_yields_nothing():
    from repro.skip import mine_chains
    result = mine_chains([["a", "b"]], 5)
    assert result.unique_candidates == 0
    assert result.total_instances == 0
    assert result.deterministic(1.0) == []


def test_attribution_on_flash_profile(intel_profiler):
    from repro.engine import ExecutionMode
    from repro.skip import attribute_costs
    from repro.workloads import BERT_BASE
    profile = intel_profiler.profile(BERT_BASE, batch_size=1, seq_len=128,
                                     mode=ExecutionMode.FLASH_ATTENTION)
    report = attribute_costs(profile.depgraph)
    sdpa = next(op for op in report.operators
                if op.name == "aten::scaled_dot_product_attention")
    assert sdpa.launches == 12 * 3  # one flash kernel/layer, 3 iterations


def test_coupling_enum_values():
    from repro.hardware import Coupling
    assert {c.value for c in Coupling} == {"LC", "CC", "TC"}


def test_iteration_metrics_queuing_property():
    from repro.skip.metrics import IterationMetrics
    metrics = IterationMetrics(
        index=0, tklqt_ns=100.0, akd_ns=1.0, inference_latency_ns=10.0,
        gpu_idle_ns=1.0, cpu_idle_ns=1.0, cpu_busy_ns=9.0, gpu_busy_ns=9.0,
        kernel_launches=10, min_launch_overhead_ns=5.0)
    assert metrics.queuing_ns == pytest.approx(100.0 - 50.0)


def test_kernel_aggregate_means(gpt2_profile):
    aggregate = gpt2_profile.metrics.top_kernels[0]
    assert aggregate.mean_duration_ns == pytest.approx(
        aggregate.total_duration_ns / aggregate.count)
    assert aggregate.mean_launch_queue_ns == pytest.approx(
        aggregate.total_launch_queue_ns / aggregate.count)


def test_fusion_analysis_plan_roundtrip_lengths(gpt2_profile):
    analyses = gpt2_profile.recommend_fusions(lengths=[4, 8])
    for analysis in analyses:
        plan = analysis.plan()
        if plan is not None:
            assert plan.max_length == analysis.length


def test_profile_result_metadata_flow(gpt2_profile):
    meta = gpt2_profile.trace.metadata
    assert meta["seq_len"] == 512
    assert gpt2_profile.run_result.mode.value == meta["mode"]


def test_launch_record_root_operator_none_safe():
    from repro.skip.depgraph import LaunchRecord
    from repro.trace import KernelEvent, LAUNCH_KERNEL, RuntimeEvent
    record = LaunchRecord(
        call=RuntimeEvent(name=LAUNCH_KERNEL, ts=0, dur=1, correlation_id=1),
        kernel=KernelEvent(name="k", ts=2, dur=1, correlation_id=1),
        operator=None,
    )
    assert record.root_operator is None
    assert record.launch_and_queue_ns == 2.0
