"""RAG pipeline: retrieval + generation TTFT (Section II-A).

The paper's RAG motivation: the final generation phase can be batched for
throughput, but batching inflates each user's time-to-first-token. This
module composes the real vector-index substrate (``repro.retrieval``) with
the engine-backed generation latency so the trade-off is measurable.

Retrieval executes for real (NumPy); its measured wall time is converted to
nanoseconds and added to the simulated generation latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.retrieval.index import BruteForceIndex, IVFIndex
from repro.serving.latency import LatencyModel
from repro.serving.planner import PlannerConfig, StepPlanner
from repro.serving.requests import queue_delay_ns
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.serving.runtime import EngineSession, ServingRuntime
    from repro.sim.core import Process


@dataclass(frozen=True)
class RagLatency:
    """Latency breakdown for one RAG query batch."""

    retrieval_ns: float
    ttft_ns: float          # generation prefill only
    generation_ns: float    # prefill + decode
    batch_size: int
    context_tokens: int

    @property
    def user_ttft_ns(self) -> float:
        """What the user perceives: retrieval plus generation TTFT."""
        return self.retrieval_ns + self.ttft_ns

    @property
    def total_ns(self) -> float:
        return self.retrieval_ns + self.generation_ns


class RagPipeline:
    """Retrieve top-k context chunks, then generate an answer."""

    def __init__(
        self,
        index: BruteForceIndex | IVFIndex,
        model: ModelConfig,
        latency: LatencyModel,
        tokens_per_chunk: int = 128,
        top_k: int = 4,
    ) -> None:
        if tokens_per_chunk <= 0 or top_k <= 0:
            raise ConfigurationError("tokens_per_chunk and top_k must be positive")
        self.index = index
        self.model = model
        self.latency = latency
        self.tokens_per_chunk = tokens_per_chunk
        self.top_k = top_k

    def query(
        self,
        embeddings: np.ndarray,
        question_tokens: int = 64,
        output_tokens: int = 128,
        batch_size: int | None = None,
    ) -> RagLatency:
        """Answer a batch of queries.

        Args:
            embeddings: Query embedding(s), shape (dim,) or (batch, dim).
            question_tokens: Prompt tokens besides retrieved context.
            output_tokens: Tokens to generate.
            batch_size: Generation batch size (defaults to the number of
                query embeddings).
        """
        queries = np.atleast_2d(np.asarray(embeddings, dtype=np.float32))
        effective_batch = len(queries) if batch_size is None else batch_size
        if effective_batch <= 0:
            raise ConfigurationError("batch_size must be positive")

        start = time.perf_counter()
        for query in queries:
            self.index.search(query, k=self.top_k)
        retrieval_ns = (time.perf_counter() - start) * 1e9

        context_tokens = self.top_k * self.tokens_per_chunk
        prompt_len = question_tokens + context_tokens
        ttft = self.latency.ttft_ns(self.model, effective_batch, prompt_len)
        total = self.latency.generation_ns(self.model, effective_batch,
                                           prompt_len, output_tokens)
        return RagLatency(
            retrieval_ns=retrieval_ns,
            ttft_ns=ttft,
            generation_ns=total,
            batch_size=effective_batch,
            context_tokens=context_tokens,
        )


def measured_retrieval_ns(
    index: BruteForceIndex | IVFIndex,
    embeddings: np.ndarray,
    top_k: int = 4,
) -> float:
    """Measure one batch of real top-k searches; returns mean ns per query.

    Bridges the real retrieval substrate into the simulated serving world:
    the measured per-query cost parameterizes
    :class:`RagServingPolicy.retrieval_ns`, so the sim replays a retrieval
    latency that was actually observed on this machine.
    """
    if top_k <= 0:
        raise ConfigurationError("top_k must be positive")
    queries = np.atleast_2d(np.asarray(embeddings, dtype=np.float32))
    start = time.perf_counter()
    for query in queries:
        index.search(query, k=top_k)
    return (time.perf_counter() - start) * 1e9 / len(queries)


@dataclass(frozen=True)
class RagServingPolicy:
    """Serve an arrival stream where every request is a RAG query.

    Attributes:
        retrieval_ns: Per-batch retrieval cost on the serving timeline
            (measure it with :func:`measured_retrieval_ns`).
        tokens_per_chunk / top_k: Context injected into the generation
            prompt, as in :class:`RagPipeline`.
        max_batch_size: Queries batched per generation run.
        chunk_tokens: Per-step token budget for chunked prefill over the
            context-augmented prompt; 0 keeps whole-batch prefills
            (bit-identical legacy schedule).
    """

    retrieval_ns: float
    tokens_per_chunk: int = 128
    top_k: int = 4
    max_batch_size: int = 8
    chunk_tokens: int = 0

    def __post_init__(self) -> None:
        if self.retrieval_ns < 0:
            raise ConfigurationError("retrieval_ns must be non-negative")
        if self.tokens_per_chunk <= 0 or self.top_k <= 0:
            raise ConfigurationError(
                "tokens_per_chunk and top_k must be positive")
        if self.max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if self.chunk_tokens < 0:
            raise ConfigurationError(
                "chunk_tokens must be non-negative (0 disables chunking)")


def rag_serving_process(runtime: ServingRuntime, session: EngineSession,
                        policy: RagServingPolicy) -> Process:
    """One replica's RAG server, as a sim process.

    FIFO batching: each claimed batch pays one retrieval step, then a
    prefill over the context-augmented prompt and the closed-form decode
    tail. The user-perceived TTFT includes the retrieval — the paper's
    batching-versus-TTFT trade-off with the retrieval floor added.

    Modeling note: the retrieval step is recorded as device work like every
    other step (one covering kernel on the replica's streams). That keeps
    the exported trace's device timeline gap-free; see ``docs/serving.md``.
    """
    queue = runtime.queue
    latency = runtime.latency
    model = runtime.model
    recorder = runtime.recorder
    context_tokens = policy.top_k * policy.tokens_per_chunk
    planner = StepPlanner(PlannerConfig(chunk_tokens=policy.chunk_tokens))
    free = 0.0
    while True:
        now = yield ("at", free)
        decision = StepPlanner.next_fifo_batch(queue, now,
                                               policy.max_batch_size)
        if decision.done:
            break
        if decision.wake_at is not None:
            free = decision.wake_at
            continue
        launch = max(decision.seed_arrival, free)
        batch = list(decision.batch)

        batch_size = len(batch)
        prompt_len = max(r.prompt_len for r in batch) + context_tokens
        output_tokens = max(r.output_tokens for r in batch)
        ttft = latency.ttft_ns(model, batch_size, prompt_len)
        total = latency.generation_ns(model, batch_size, prompt_len,
                                      output_tokens)
        waiting = queue.depth(launch) if recorder is not None else 0
        if recorder is not None:
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     launch)
        clock = launch
        if policy.retrieval_ns > 0:
            session.execute(StepKind.RETRIEVAL, clock, policy.retrieval_ns,
                            batch_size, queue_depth=waiting)
            clock += policy.retrieval_ns
        # Planner-decomposed prefill over the context-augmented prompt:
        # one whole chunk when chunking is off, budget-sized chunks else.
        offset = 0.0
        for chunk in planner.prefill_plan(batch[0].request_id, prompt_len):
            chunk_ns = (ttft if chunk.is_whole
                        else StepPlanner.chunk_cost_ns(latency, model,
                                                       batch_size, chunk))
            session.execute(chunk.kind, clock + offset, chunk_ns, batch_size,
                            queue_depth=waiting,
                            shape=EngineShape(model.name, batch_size,
                                              prompt_len)
                            if recorder is not None and chunk.is_whole
                            else None,
                            schedule_label=chunk.schedule_label)
            offset += chunk_ns
        if total > ttft:
            session.execute(StepKind.GENERATION, clock + offset, total - ttft,
                            batch_size, queue_depth=waiting)
        for request in batch:
            queued = queue_delay_ns(request, launch)
            if recorder is not None:
                recorder.on_first_token(request.request_id, clock + ttft)
                recorder.on_completed(request.request_id, clock + total)
            runtime.complete(request,
                             ttft_ns=queued + policy.retrieval_ns + ttft,
                             completion_ns=queued + policy.retrieval_ns + total,
                             batch_size=batch_size,
                             service_start_ns=launch, session=session)
        free = clock + total
