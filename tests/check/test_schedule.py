"""Schedule hazard detector: deadlocks the simulator would hang on.

The adversarial schedules are hand-built: ``DeviceSchedule`` is exactly the
abstraction the engine's dispatch processes walk, so each fixture is the
static shape of a real multi-device bug (swapped collective order, a
device skipping a barrier, a stray stream assignment).
"""

from repro.check import (
    CollectiveJoin,
    DeviceSchedule,
    KernelIssue,
    check_schedules,
    schedules_from_lowering,
)
from repro.check.schedule import COMPUTE_STREAM
from repro.engine import TPConfig, shard_lowered


def _rule_ids(findings):
    return {f.rule_id for f in findings}


def _symmetric(world, keys):
    """World identical devices joining ``keys`` in order."""
    return [
        DeviceSchedule(device=d, items=[
            CollectiveJoin(key=key, parties=world) for key in keys])
        for d in range(world)
    ]


# ----------------------------------------------------------------------
# Real engine schedules are hazard-free
# ----------------------------------------------------------------------
def test_engine_tp_schedule_is_clean(gpt2_lowered):
    tp = TPConfig(degree=2)
    schedules = schedules_from_lowering(shard_lowered(gpt2_lowered, tp), tp)
    assert check_schedules(schedules) == []


def test_engine_tp4_schedule_is_clean(gpt2_lowered):
    tp = TPConfig(degree=4)
    schedules = schedules_from_lowering(shard_lowered(gpt2_lowered, tp), tp)
    assert len(schedules) == 4
    assert check_schedules(schedules) == []


def test_derived_schedules_match_engine_shape(gpt2_lowered):
    tp = TPConfig(degree=2)
    sharded = shard_lowered(gpt2_lowered, tp)
    schedules = schedules_from_lowering(sharded, tp)
    kernel_count = sum(len(lo.kernels) for lo in sharded)
    for schedule in schedules:
        # every kernel appears exactly once, plus the iteration-end barrier
        assert len(schedule.items) == kernel_count + 1
        assert schedule.items[-1].key == "iteration-end"


# ----------------------------------------------------------------------
# S001: wait-for cycle (the classic mismatched-collective-order deadlock)
# ----------------------------------------------------------------------
def test_swapped_collective_order_deadlocks_s001():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2), CollectiveJoin("y", 2)])
    b = DeviceSchedule(1, [CollectiveJoin("y", 2), CollectiveJoin("x", 2)])
    findings = check_schedules([a, b])
    assert "S001" in _rule_ids(findings)
    (cycle,) = [f for f in findings if f.rule_id == "S001"]
    assert "x" in cycle.message and "y" in cycle.message


def test_three_device_rotation_deadlocks_s001():
    keys = ["x", "y", "z"]
    schedules = [
        DeviceSchedule(d, [CollectiveJoin(keys[(i + d) % 3], 3)
                           for i in range(3)])
        for d in range(3)
    ]
    assert "S001" in _rule_ids(check_schedules(schedules))


def test_consistent_order_has_no_cycle():
    assert check_schedules(_symmetric(2, ["x", "y", "z"])) == []


# ----------------------------------------------------------------------
# S002 / S003: party-count hazards
# ----------------------------------------------------------------------
def test_disagreeing_party_count_flagged_s002():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2)])
    b = DeviceSchedule(1, [CollectiveJoin("x", 3)])
    assert "S002" in _rule_ids(check_schedules([a, b]))


def test_missing_joiner_flagged_s003():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2), CollectiveJoin("y", 2)])
    b = DeviceSchedule(1, [CollectiveJoin("y", 2)])  # never joins x
    findings = check_schedules([a, b])
    assert "S003" in _rule_ids(findings)


def test_overfull_rendezvous_flagged_s003():
    schedules = _symmetric(3, ["x"])
    for schedule in schedules:
        schedule.items[0] = CollectiveJoin("x", 2)  # 3 join, 2 expected
    assert "S003" in _rule_ids(check_schedules(schedules))


# ----------------------------------------------------------------------
# S004: duplicate join
# ----------------------------------------------------------------------
def test_double_join_flagged_s004():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2), CollectiveJoin("x", 2)])
    b = DeviceSchedule(1, [CollectiveJoin("x", 2)])
    assert "S004" in _rule_ids(check_schedules([a, b]))


# ----------------------------------------------------------------------
# S005: unreachable work behind a hanging collective
# ----------------------------------------------------------------------
def test_work_behind_hanging_collective_flagged_s005():
    a = DeviceSchedule(0, [
        CollectiveJoin("x", 2),
        KernelIssue("gemm_after"),
        CollectiveJoin("iteration-end", 2),
    ])
    b = DeviceSchedule(1, [CollectiveJoin("iteration-end", 2)])
    findings = check_schedules([a, b])
    rule_ids = _rule_ids(findings)
    assert "S003" in rule_ids  # x waits for a party that never comes
    assert "S005" in rule_ids
    (unreachable,) = [f for f in findings if f.rule_id == "S005"]
    assert "2 event(s)" in unreachable.message


def test_deadlock_marks_downstream_unreachable():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2), CollectiveJoin("y", 2),
                           KernelIssue("tail")])
    b = DeviceSchedule(1, [CollectiveJoin("y", 2), CollectiveJoin("x", 2),
                           KernelIssue("tail")])
    rule_ids = _rule_ids(check_schedules([a, b]))
    assert {"S001", "S005"} <= rule_ids


# ----------------------------------------------------------------------
# S006: collective off the compute stream
# ----------------------------------------------------------------------
def test_collective_off_compute_stream_flagged_s006():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2, stream=COMPUTE_STREAM + 1)])
    b = DeviceSchedule(1, [CollectiveJoin("x", 2)])
    assert "S006" in _rule_ids(check_schedules([a, b]))


def test_kernel_issues_alone_are_clean():
    schedules = [DeviceSchedule(d, [KernelIssue(f"k{i}") for i in range(5)])
                 for d in range(2)]
    assert check_schedules(schedules) == []
