"""RunRecorder lifecycle, histograms, and summaries."""

import pytest

from repro.errors import AnalysisError
from repro.obs import EngineShape, RunRecorder, StepKind
from repro.obs.recorder import H_TBT, H_TTFT


def test_request_lifecycle_span():
    rec = RunRecorder()
    rec.on_admitted(7, arrival_ns=100.0, admitted_ns=150.0)
    rec.on_first_token(7, 250.0)
    rec.on_token(7, 300.0)
    rec.on_token(7, 340.0)
    rec.on_completed(7, 340.0)

    (span,) = rec.completed_spans()
    assert span.request_id == 7
    assert span.queue_ns == 50.0
    assert span.first_token_ns == 250.0
    assert span.completed_ns == 340.0
    assert rec.histogram(H_TTFT).mean() == pytest.approx(150.0)
    assert rec.histogram(H_TBT).count == 2
    assert rec.counters.get("tokens_generated") == 2


def test_admission_before_arrival_rejected():
    rec = RunRecorder()
    with pytest.raises(AnalysisError):
        rec.on_admitted(1, arrival_ns=100.0, admitted_ns=50.0)


def test_unadmitted_request_rejected():
    rec = RunRecorder()
    with pytest.raises(AnalysisError):
        rec.on_first_token(42, 10.0)


def test_record_step_validates_and_counts():
    rec = RunRecorder()
    rec.record_step(StepKind.PREFILL, 0.0, 100.0, 4, queue_depth=2,
                    shape=EngineShape("gpt2", 4, 64))
    rec.record_step(StepKind.DECODE, 100.0, 50.0, 4)
    assert rec.span_ns == 150.0
    assert rec.counters.get("steps_prefill") == 1
    assert rec.counters.get("steps_decode") == 1
    with pytest.raises(AnalysisError):
        rec.record_step(StepKind.DECODE, 0.0, -1.0, 4)
    with pytest.raises(AnalysisError):
        rec.record_step(StepKind.DECODE, 0.0, 1.0, 0)


def test_engine_shape_validates():
    with pytest.raises(AnalysisError):
        EngineShape("gpt2", 0, 64)
    with pytest.raises(AnalysisError):
        EngineShape("gpt2", 1, 0)


def test_summary_renders(recorded_run):
    recorder, _, report, requests = recorded_run
    summary = recorder.summary()
    assert summary.requests_completed == len(requests)
    assert summary.requests_completed == len(report.outcomes)
    assert summary.steps == len(recorder.steps)
    text = summary.render("my run")
    assert "my run" in text
    assert "TTFT" in text and "TBT" in text
    assert "requests completed" in text


def test_recorded_steps_cover_serving_clock(recorded_run):
    recorder, _, _, _ = recorded_run
    starts = [s.ts_ns for s in recorder.steps]
    assert starts == sorted(starts)
    assert recorder.span_ns > 0
