"""SKIP metrics (Eqs. 1-5)."""

import pytest

from repro.engine import EngineConfig, ExecutionMode, run
from repro.errors import AnalysisError
from repro.hardware import INTEL_H100
from repro.skip import compute_metrics
from repro.trace import TraceBuilder, Trace
from repro.workloads import BERT_BASE, GPT2

FAST = EngineConfig(iterations=1)


def build_synthetic_trace():
    """Two launches with known timings for exact metric checks."""
    builder = TraceBuilder()
    builder.begin_iteration(0.0)
    op = builder.begin_operator("aten::linear", 0.0)
    # launch at t=10, kernel starts t=15 (t_l = 5), runs 20
    builder.launch_kernel(10.0, 2.0, "gemm", 15.0, 20.0)
    # launch at t=20, kernel starts t=40 (t_l = 20: queued), runs 10
    builder.launch_kernel(20.0, 2.0, "bias", 40.0, 10.0)
    builder.end_operator(op, 30.0)
    builder.end_iteration(55.0)
    return builder.finish()


def test_exact_tklqt():
    metrics = compute_metrics(build_synthetic_trace())
    assert metrics.tklqt_ns == pytest.approx(5.0 + 20.0)


def test_exact_akd():
    metrics = compute_metrics(build_synthetic_trace())
    assert metrics.akd_ns == pytest.approx((20.0 + 10.0) / 2)


def test_exact_inference_latency():
    # IL = ts_e(k_n) - ts_b(p_1) = 50 - 0
    metrics = compute_metrics(build_synthetic_trace())
    assert metrics.inference_latency_ns == pytest.approx(50.0)


def test_exact_gpu_idle():
    # Eq. 5: IL - sum(t_k) = 50 - 30
    metrics = compute_metrics(build_synthetic_trace())
    assert metrics.gpu_idle_ns == pytest.approx(20.0)


def test_exact_cpu_idle():
    # IL - cpu busy (operator spans 0..30) = 50 - 30
    metrics = compute_metrics(build_synthetic_trace())
    assert metrics.cpu_idle_ns == pytest.approx(20.0)


def test_queuing_excess_over_floor():
    metrics = compute_metrics(build_synthetic_trace())
    # floor = 2 kernels * min t_l (5) = 10; queuing = 25 - 10
    assert metrics.queuing_ns == pytest.approx(15.0)


def test_top_kernels_ranked_by_count():
    result = run(BERT_BASE, INTEL_H100, batch_size=1, seq_len=128, config=FAST)
    metrics = compute_metrics(result.trace)
    top = metrics.top_k(5)
    assert len(top) == 5
    counts = [t.count for t in top]
    assert counts == sorted(counts, reverse=True)
    # splitKreduce bias epilogues are among the most frequent BERT kernels.
    assert any("splitKreduce" in t.name for t in top)


def test_metrics_averaged_across_iterations():
    result = run(BERT_BASE, INTEL_H100, batch_size=1, seq_len=128,
                 config=EngineConfig(iterations=3))
    metrics = compute_metrics(result.trace)
    assert len(metrics.iterations) == 3
    ils = [it.inference_latency_ns for it in metrics.iterations]
    assert metrics.inference_latency_ns == pytest.approx(sum(ils) / 3)
    # Deterministic engine: every iteration identical.
    assert max(ils) - min(ils) < 1e-3 * metrics.inference_latency_ns


def test_kernel_launch_count(gpt2_profile):
    assert gpt2_profile.metrics.kernel_launches == 413


def test_mean_launch_queue(gpt2_profile):
    m = gpt2_profile.metrics
    assert m.mean_launch_queue_ns == pytest.approx(
        m.tklqt_ns / m.kernel_launches)


def test_graph_mode_metrics_have_zero_tklqt():
    result = run(GPT2, INTEL_H100, batch_size=1, seq_len=128,
                 mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD, config=FAST)
    metrics = compute_metrics(result.trace)
    assert metrics.tklqt_ns == 0.0
    assert metrics.inference_latency_ns > 0
    assert metrics.kernel_launches > 0


def test_trace_without_iterations_raises():
    with pytest.raises(AnalysisError):
        compute_metrics(Trace())


def test_iteration_without_kernels_raises():
    builder = TraceBuilder()
    builder.begin_iteration(0.0)
    op = builder.begin_operator("aten::add", 0.0)
    builder.end_operator(op, 5.0)
    builder.end_iteration(6.0)
    with pytest.raises(AnalysisError):
        compute_metrics(builder.finish())
