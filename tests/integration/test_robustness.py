"""Failure injection: malformed and adversarial inputs.

A profiler that crashes confusingly on a weird trace is useless; these tests
pin down the failure modes (clean ReproError subclasses, never KeyError /
IndexError / ZeroDivisionError).
"""

import json

import pytest

from repro.errors import AnalysisError, ReproError, TraceError
from repro.skip import (
    DependencyGraph,
    SkipProfiler,
    compute_metrics,
    kernel_segments,
)
from repro.trace import (
    KernelEvent,
    LAUNCH_KERNEL,
    OperatorEvent,
    RuntimeEvent,
    Trace,
    chrome,
)


def test_chrome_trace_with_garbage_events_is_tolerated():
    payload = {"traceEvents": [
        {"ph": "M", "name": "process_name"},                 # metadata event
        {"ph": "X", "cat": "cpu_op", "name": "aten::add",
         "ts": 0, "dur": 5, "tid": 1, "args": {}},
        "not-a-dict",
        {"ph": "B", "name": "unsupported begin event"},
        {"ph": "X", "cat": "weird_category", "name": "x", "ts": 0, "dur": 1},
    ]}
    trace = chrome.loads(json.dumps(payload))
    assert len(trace.operators) == 1


def test_chrome_trace_missing_fields_defaults():
    payload = {"traceEvents": [
        {"ph": "X", "cat": "kernel", "name": "k"},  # no ts/dur/args
    ]}
    trace = chrome.loads(json.dumps(payload))
    assert trace.kernels[0].ts == 0.0
    assert trace.kernels[0].correlation_id == -1


def test_kernel_before_its_launch_is_a_trace_error():
    trace = Trace()
    trace.add(OperatorEvent(name="op", ts=0.0, dur=10.0, tid=1, seq=0))
    trace.add(RuntimeEvent(name=LAUNCH_KERNEL, ts=5.0, dur=1.0, tid=1,
                           correlation_id=1))
    trace.add(KernelEvent(name="k", ts=2.0, dur=1.0, correlation_id=1))
    trace.mark_iteration(0.0, 20.0)
    trace.sort()
    # The dependency graph still builds; the metric layer reports the
    # negative t_l rather than crashing (real clock-skewed traces do this).
    graph = DependencyGraph.from_trace(trace)
    assert graph.launches[0].launch_and_queue_ns == -3.0
    metrics = compute_metrics(trace, graph)
    assert metrics.tklqt_ns == -3.0


def test_overlapping_iterations_attribute_by_launch_time():
    trace = Trace()
    trace.add(OperatorEvent(name="op", ts=0.0, dur=30.0, tid=1, seq=0))
    trace.add(RuntimeEvent(name=LAUNCH_KERNEL, ts=5.0, dur=1.0, tid=1,
                           correlation_id=1))
    trace.add(KernelEvent(name="k", ts=8.0, dur=2.0, correlation_id=1))
    trace.mark_iteration(0.0, 20.0)
    trace.mark_iteration(10.0, 40.0)   # overlaps the first
    trace.sort()
    assert len(trace.kernels_in_iteration(0)) == 1
    assert len(trace.kernels_in_iteration(1)) == 0


def test_segments_on_empty_iteration_raise_cleanly():
    trace = Trace()
    trace.mark_iteration(0.0, 1.0)
    assert kernel_segments(trace) == [[]]
    with pytest.raises(AnalysisError):
        compute_metrics(trace)


def test_analyze_rejects_traces_without_iterations():
    trace = Trace()
    trace.add(KernelEvent(name="k", ts=0.0, dur=1.0, correlation_id=-1))
    with pytest.raises(ReproError):
        SkipProfiler.analyze(trace)


def test_duplicate_correlation_is_a_trace_error():
    trace = Trace()
    for ts in (0.0, 5.0):
        trace.add(RuntimeEvent(name=LAUNCH_KERNEL, ts=ts, dur=1.0, tid=1,
                               correlation_id=7))
        trace.add(KernelEvent(name="k", ts=ts + 2, dur=1.0, correlation_id=7))
    trace.mark_iteration(0.0, 20.0)
    with pytest.raises(TraceError):
        DependencyGraph.from_trace(trace)


def test_every_public_error_is_a_repro_error():
    from repro.errors import (
        AnalysisError,
        ConfigurationError,
        SimulationError,
        TraceError,
    )
    for error_type in (AnalysisError, ConfigurationError, SimulationError,
                       TraceError):
        assert issubclass(error_type, ReproError)
