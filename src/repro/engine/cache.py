"""Lowered-graph cache — skip re-lowering on repeated sweep points.

``build_graph`` → ``lower_graph`` → ``apply_inductor_fusion`` is a
deterministic pure pipeline of the workload shape: the same
``(model, batch, seq, phase, attention, context_len)`` always produces the
same operator graph, and the same graph plus mode always produces the same
pre-shard lowering. Sweeps re-run that pipeline for every ``(platform,
batch)`` point and every serving latency lookup, even though only a handful
of distinct shapes exist per sweep. The cache keys the two stages on those
shapes; sharding (:func:`repro.engine.tp.shard_lowered`) stays per-run —
it is cheap and depends on the TP config.

Correctness stance: cached values are **shared, not copied**. ``LoweredOp``
and ``KernelTask`` are frozen dataclasses; ``OperatorGraph`` is mutable but
treated as read-only by the whole engine (the executor never mutates a
built graph). The fast-path parity suite asserts a cache hit produces
results bit-identical to a fresh lowering, and the hypothesis suite checks
hit-vs-fresh structural equality plus ``repro check graph`` cleanliness.

The executor bypasses the cache when the caller passes a prebuilt
``OperatorGraph`` (no shape key exists for it) or a ``fusion_plan``
(plan objects are caller-owned and not necessarily hashable).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.engine.compiler import apply_inductor_fusion
from repro.engine.lowering import LoweredOp, lower_graph
from repro.engine.modes import ExecutionMode
from repro.workloads.builder import AttentionImpl, build_graph
from repro.workloads.config import ModelConfig
from repro.workloads.graph import OperatorGraph, Phase

#: Shape key of a built graph. ``ModelConfig`` is a frozen dataclass, so the
#: whole tuple is hashable and two equal keys denote identical workloads.
GraphKey = tuple[ModelConfig, int, int, Phase, AttentionImpl, "int | None"]

#: A graph key plus the execution mode, keying the fused pre-shard lowering.
LoweringKey = tuple[ModelConfig, int, int, Phase, AttentionImpl,
                    "int | None", ExecutionMode]


@dataclass
class CacheStats:
    """Hit/miss counters, exposed for the perf harness and tests."""

    graph_hits: int = 0
    graph_misses: int = 0
    lowering_hits: int = 0
    lowering_misses: int = 0

    def reset(self) -> None:
        self.graph_hits = self.graph_misses = 0
        self.lowering_hits = self.lowering_misses = 0


@dataclass
class LoweringCache:
    """FIFO-bounded cache for built graphs and fused pre-shard lowerings."""

    max_entries: int = 512
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    _graphs: dict[GraphKey, OperatorGraph] = field(default_factory=dict)
    _lowerings: dict[LoweringKey, list[LoweredOp]] = field(default_factory=dict)

    def graph(self, model: ModelConfig, batch_size: int, seq_len: int,
              phase: Phase, attention: AttentionImpl,
              context_len: int | None) -> OperatorGraph:
        """The built operator graph for a workload shape (cached)."""
        if not self.enabled:
            return build_graph(model, batch_size, seq_len, phase=phase,
                               attention=attention, context_len=context_len)
        key = (model, batch_size, seq_len, phase, attention, context_len)
        graph = self._graphs.get(key)
        if graph is None:
            self.stats.graph_misses += 1
            graph = build_graph(model, batch_size, seq_len, phase=phase,
                                attention=attention, context_len=context_len)
            self._insert(self._graphs, key, graph)
        else:
            self.stats.graph_hits += 1
        return graph

    def lowering(self, key_shape: GraphKey, graph: OperatorGraph,
                 mode: ExecutionMode) -> list[LoweredOp]:
        """The fused pre-shard lowering for ``graph`` under ``mode`` (cached).

        ``key_shape`` must be the shape key ``graph`` was built from; the
        executor derives both from the same arguments.
        """
        if not self.enabled:
            return apply_inductor_fusion(lower_graph(graph), mode)
        key = (*key_shape, mode)
        lowered = self._lowerings.get(key)
        if lowered is None:
            self.stats.lowering_misses += 1
            lowered = apply_inductor_fusion(lower_graph(graph), mode)
            self._insert(self._lowerings, key, lowered)
        else:
            self.stats.lowering_hits += 1
        return lowered

    def _insert(self, table: dict, key, value) -> None:
        # FIFO eviction: dicts preserve insertion order, so the first key is
        # the oldest. Sweeps revisit a small working set; recency tracking
        # would buy nothing over this.
        if len(table) >= self.max_entries:
            table.pop(next(iter(table)))
        table[key] = value

    def clear(self) -> None:
        self._graphs.clear()
        self._lowerings.clear()
        self.stats.reset()

    def __len__(self) -> int:
        return len(self._graphs) + len(self._lowerings)

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Temporarily bypass the cache (parity tests run both ways)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous


#: Process-wide cache instance the executor consults. Worker processes of a
#: ``--jobs`` sweep each get their own (module state is per-interpreter).
LOWERING_CACHE = LoweringCache()
