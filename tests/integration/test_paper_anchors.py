"""Calibration anchors: the paper's headline numbers within tolerance.

These tests pin the reproduction to the paper's reported results. If a model
change moves one of them, EXPERIMENTS.md must be updated alongside.
"""

import pytest

from repro.analysis import find_crossover
from repro.hardware import AMD_A100, GH200, INTEL_H100, nullkernel_table
from repro.skip import analyze_trace, best_speedup


class TestTable5:
    def test_launch_overheads(self):
        rows = {r.platform: r for r in nullkernel_table(
            (AMD_A100, INTEL_H100, GH200))}
        assert rows["AMD+A100"].launch_overhead_ns == pytest.approx(2260.5)
        assert rows["Intel+H100"].launch_overhead_ns == pytest.approx(2374.6)
        assert rows["GH200"].launch_overhead_ns == pytest.approx(2771.6)

    def test_durations(self):
        rows = {r.platform: r for r in nullkernel_table(
            (AMD_A100, INTEL_H100, GH200))}
        assert rows["AMD+A100"].duration_ns == pytest.approx(1440.0)
        assert rows["Intel+H100"].duration_ns == pytest.approx(1235.2)
        assert rows["GH200"].duration_ns == pytest.approx(1171.2)


class TestFig6Transitions:
    """Encoder CPU->GPU-bound stars: LC ~8, GH200 ~32 (4x wider region)."""

    def test_lc_stars_at_8(self, bert_sweep):
        assert bert_sweep.transition("Intel+H100").batch_size == 8
        assert bert_sweep.transition("AMD+A100").batch_size == 8

    def test_gh200_stars_at_32(self, bert_sweep):
        assert bert_sweep.transition("GH200").batch_size == 32

    def test_four_x_wider_cpu_bound_region(self, bert_sweep):
        lc = bert_sweep.transition("Intel+H100").batch_size
        cc = bert_sweep.transition("GH200").batch_size
        assert cc == 4 * lc

    def test_tklqt_flat_in_cpu_bound_region(self, bert_sweep):
        tklqt = bert_sweep.tklqt_series("GH200")
        batches = bert_sweep.batch_sizes
        plateau = tklqt[0]
        for batch, value in zip(batches, tklqt):
            if batch < 16:
                assert value < 3 * plateau, f"not flat at BS={batch}"


class TestFig10Encoders:
    def test_bs1_gh200_slowest(self, bert_sweep):
        """Paper: GH200 2.8x/1.9x slower than Intel/AMD at BS=1."""
        gh = bert_sweep.point("GH200", 1).ttft_ns
        intel = bert_sweep.point("Intel+H100", 1).ttft_ns
        amd = bert_sweep.point("AMD+A100", 1).ttft_ns
        assert gh / intel == pytest.approx(2.8, rel=0.25)
        assert gh / amd == pytest.approx(1.9, rel=0.15)

    def test_bs8_ratios(self, bert_sweep):
        """Paper: 1.7x / 1.5x at BS=8."""
        gh = bert_sweep.point("GH200", 8).ttft_ns
        intel = bert_sweep.point("Intel+H100", 8).ttft_ns
        amd = bert_sweep.point("AMD+A100", 8).ttft_ns
        assert gh / intel == pytest.approx(1.7, rel=0.15)
        assert gh / amd == pytest.approx(1.5, rel=0.15)

    def test_crossover_at_16(self, bert_sweep):
        assert find_crossover(bert_sweep, "GH200", "Intel+H100").batch_size == 16

    def test_bs64_speedups(self, bert_sweep):
        """Paper: 1.6x / 2.4x at BS=64 (our Intel ratio runs ~2.0; the
        memory-bandwidth roofline overestimates GH200's edge on the
        encoder's traffic-heavy eager attention — see EXPERIMENTS.md)."""
        cp_intel = find_crossover(bert_sweep, "GH200", "Intel+H100")
        cp_amd = find_crossover(bert_sweep, "GH200", "AMD+A100")
        assert 1.5 <= cp_intel.speedup_at(bert_sweep.batch_sizes, 64) <= 2.3
        assert cp_amd.speedup_at(bert_sweep.batch_sizes, 64) == pytest.approx(
            2.4, rel=0.15)

    def test_gh200_flat_until_32(self, bert_sweep):
        """Paper: GH200 sustains near-constant TTFT until BS=32."""
        ttft = bert_sweep.ttft_series("GH200")
        batches = bert_sweep.batch_sizes
        bs1 = ttft[0]
        bs16 = ttft[batches.index(16)]
        assert bs16 < 1.3 * bs1


class TestFig11Decoders:
    def test_llama_bs16_speedups(self, llama_sweep):
        """Paper: 1.9x / 2.7x at BS=16."""
        vs_intel = find_crossover(llama_sweep, "GH200", "Intel+H100")
        vs_amd = find_crossover(llama_sweep, "GH200", "AMD+A100")
        assert vs_intel.speedup_at(llama_sweep.batch_sizes, 16) == pytest.approx(
            1.9, rel=0.15)
        assert vs_amd.speedup_at(llama_sweep.batch_sizes, 16) == pytest.approx(
            2.7, rel=0.15)

    def test_llama_crossover_low(self, llama_sweep):
        """Paper reads the Llama CP at ~BS=1 (latency similar at BS=1); our
        simulator places it at BS=8 because its BS=1 run is still
        CPU-dominated — documented deviation in EXPERIMENTS.md."""
        cp = find_crossover(llama_sweep, "GH200", "Intel+H100")
        assert cp.found and cp.batch_size <= 8


class TestFig8FusionSpeedups:
    def test_gpt2_max_speedup(self, gpt2_profile):
        """Paper: up to 2.7x for GPT-2 at L=256."""
        best = best_speedup(analyze_trace(gpt2_profile.trace))
        assert best.length == 256
        assert best.ideal_speedup == pytest.approx(2.7, rel=0.15)

    def test_xlmr_max_speedup(self, xlmr_profile):
        """Paper: up to 6.8x for XLM-RoBERTa at L=256."""
        best = best_speedup(analyze_trace(xlmr_profile.trace))
        assert best.ideal_speedup == pytest.approx(6.8, rel=0.15)

    def test_short_chains_modest(self, gpt2_profile, xlmr_profile):
        """Paper: 1.05x-1.09x for short chains."""
        for profile in (gpt2_profile, xlmr_profile):
            analyses = {a.length: a for a in analyze_trace(profile.trace,
                                                           lengths=[2, 4])}
            assert 1.0 < analyses[2].ideal_speedup < 1.15
            assert 1.0 < analyses[4].ideal_speedup < 1.25


class TestKeyTakeaways:
    def test_gh200_bs1_encoder_latency_is_cpu_dominated(self, bert_sweep):
        """GH200's BS=1 encoder latency is dominated by CPU time (the
        Grace bottleneck, paper Section V-D)."""
        point = bert_sweep.point("GH200", 1)
        assert point.metrics.cpu_busy_ns > 0.8 * point.metrics.inference_latency_ns

    def test_gpu_idle_high_at_bs1_low_at_bs128(self, bert_sweep):
        for platform in ("Intel+H100", "GH200"):
            m1 = bert_sweep.point(platform, 1).metrics
            m128 = bert_sweep.point(platform, 128).metrics
            assert m1.gpu_idle_ns / m1.inference_latency_ns > 0.5
            assert m128.gpu_idle_ns / m128.inference_latency_ns < 0.3
