"""EventQueue ordering and error behavior."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue


def test_pops_in_time_order():
    queue = EventQueue()
    queue.push(30.0, "c")
    queue.push(10.0, "a")
    queue.push(20.0, "b")
    assert [queue.pop() for _ in range(3)] == [
        (10.0, "a"), (20.0, "b"), (30.0, "c")]


def test_fifo_tie_break_at_equal_times():
    queue = EventQueue()
    for item in ("first", "second", "third"):
        queue.push(5.0, item)
    assert [queue.pop()[1] for _ in range(3)] == ["first", "second", "third"]


def test_peek_does_not_pop():
    queue = EventQueue()
    queue.push(7.0, "x")
    assert queue.peek_time() == 7.0
    assert len(queue) == 1
    assert queue.pop() == (7.0, "x")


def test_len_and_bool():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0
    queue.push(0.0, "x")
    assert queue
    assert len(queue) == 1


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.push(-1.0, "x")


def test_empty_pop_and_peek_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.pop()
    with pytest.raises(SimulationError):
        queue.peek_time()


def test_interleaved_push_pop_stays_ordered():
    queue = EventQueue()
    queue.push(10.0, "late")
    queue.push(1.0, "early")
    assert queue.pop() == (1.0, "early")
    queue.push(5.0, "middle")
    assert queue.pop() == (5.0, "middle")
    assert queue.pop() == (10.0, "late")
