"""Public API surface: every advertised name resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.engine",
    "repro.hardware",
    "repro.retrieval",
    "repro.serving",
    "repro.skip",
    "repro.trace",
    "repro.viz",
    "repro.workloads",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert getattr(module, name, None) is not None, f"{package}.{name}"


def test_version_is_exposed():
    import repro
    assert repro.__version__ == "1.0.0"


def test_all_lists_are_sorted_unique():
    for package in PACKAGES:
        module = importlib.import_module(package)
        names = [n for n in module.__all__ if n != "__version__"]
        assert len(names) == len(set(names)), package


def test_top_level_reexports_cover_the_quickstart():
    # The README quickstart must keep working from the top-level namespace.
    from repro import (
        ExecutionMode,
        GH200,
        LLAMA_3_2_1B,
        SkipProfiler,
        run_batch_sweep,
    )
    assert ExecutionMode.EAGER.value == "eager"
    assert GH200.name == "GH200"
    assert LLAMA_3_2_1B.name == "llama-3.2-1b"
    assert callable(run_batch_sweep)
    assert SkipProfiler is not None
