"""Continuous (iteration-level) batching, vLLM-style.

Section IV-B: serving frameworks like vLLM "aim to maximize throughput while
approaching the low latency characteristic of BS=1 execution" using
continuous batching. This simulation admits requests at decode-step
boundaries instead of waiting to assemble a full static batch: new arrivals
are prefilled as soon as the engine is free, then join the running decode
batch, so one slow request never holds a batch hostage.

Decode-step latencies are looked up through the engine-backed LatencyModel
with context lengths bucketed (decode cost is near-affine in context, and
bucketing bounds the number of engine runs).

Passing a :class:`repro.obs.RunRecorder` records every admission, prefill
batch, decode step, token, and completion; the recorded run exports as a
SKIP-analyzable Chrome trace (see ``docs/observability.md``).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.batcher import ServingReport
from repro.serving.latency import LatencyModel
from repro.serving.requests import Request, RequestOutcome
from repro.workloads.config import ModelConfig


@dataclass(frozen=True)
class ContinuousBatchPolicy:
    """Iteration-level scheduling knobs.

    Attributes:
        max_active: Maximum sequences decoding concurrently.
        context_bucket: Decode context lengths are rounded up to this
            multiple for latency lookups.
    """

    max_active: int = 16
    context_bucket: int = 64

    def __post_init__(self) -> None:
        if self.max_active <= 0:
            raise ConfigurationError("max_active must be positive")
        if self.context_bucket <= 0:
            raise ConfigurationError("context_bucket must be positive")


@dataclass
class _Sequence:
    request: Request
    first_token_ns: float
    remaining: int
    context: int
    last_token_ns: float = 0.0


def simulate_continuous_batching(
    requests: Sequence[Request],
    model: ModelConfig,
    latency: LatencyModel,
    policy: ContinuousBatchPolicy = ContinuousBatchPolicy(),
    recorder: RunRecorder | None = None,
) -> ServingReport:
    """Run an iteration-level serving loop over an arrival stream."""
    if not requests:
        raise ConfigurationError("no requests to serve")

    pending = sorted(requests, key=lambda r: r.arrival_ns)
    arrivals = [r.arrival_ns for r in pending]
    active: list[_Sequence] = []
    outcomes: list[RequestOutcome] = []
    clock = 0.0
    next_pending = 0

    def queue_depth() -> int:
        """Requests that have arrived but are not yet admitted."""
        return bisect_right(arrivals, clock) - next_pending

    def admit() -> None:
        nonlocal clock, next_pending
        space = policy.max_active - len(active)
        batch: list[Request] = []
        while (space > 0 and next_pending < len(pending)
               and pending[next_pending].arrival_ns <= clock):
            batch.append(pending[next_pending])
            next_pending += 1
            space -= 1
        if not batch:
            return
        prompt_len = max(r.prompt_len for r in batch)
        prefill_ns = latency.ttft_ns(model, len(batch), prompt_len)
        if recorder is not None:
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     clock)
            recorder.record_step(
                StepKind.PREFILL, clock, prefill_ns, len(batch),
                queue_depth=queue_depth(),
                shape=EngineShape(model.name, len(batch), prompt_len))
        clock += prefill_ns
        for request in batch:
            seq = _Sequence(
                request=request,
                first_token_ns=clock - request.arrival_ns,
                remaining=request.output_tokens - 1,
                context=request.prompt_len + 1,
                last_token_ns=clock - request.arrival_ns,
            )
            if recorder is not None:
                recorder.on_first_token(request.request_id, clock)
            if seq.remaining <= 0:
                # Single-token request: its first (prefill) token is its
                # last; it completes here and never joins the decode batch.
                if recorder is not None:
                    recorder.on_completed(request.request_id, clock)
                outcomes.append(RequestOutcome(
                    request=request,
                    ttft_ns=seq.first_token_ns,
                    completion_ns=seq.first_token_ns,
                    batch_size=len(batch),
                    queue_ns=max(0.0, seq.first_token_ns
                                 - latency.ttft_ns(model, 1, request.prompt_len)),
                ))
            else:
                active.append(seq)

    while next_pending < len(pending) or active:
        if not active:
            # Idle engine: jump to the next arrival.
            clock = max(clock, pending[next_pending].arrival_ns)
            admit()
            continue
        # One decode step for the whole active set.
        context = max(seq.context for seq in active)
        bucketed = -(-context // policy.context_bucket) * policy.context_bucket
        step_ns = latency.decode_step_ns(model, len(active), bucketed)
        if recorder is not None:
            recorder.record_step(
                StepKind.DECODE, clock, step_ns, len(active),
                queue_depth=queue_depth(),
                shape=EngineShape(model.name, len(active), 1,
                                  phase="decode", context_len=bucketed))
        clock += step_ns
        step_batch = len(active)
        finished: list[_Sequence] = []
        for seq in active:
            seq.context += 1
            seq.remaining -= 1
            seq.last_token_ns = clock - seq.request.arrival_ns
            if recorder is not None:
                recorder.on_token(seq.request.request_id, clock)
            if seq.remaining <= 0:
                finished.append(seq)
        for seq in finished:
            active.remove(seq)
            if recorder is not None:
                recorder.on_completed(seq.request.request_id, clock)
            outcomes.append(RequestOutcome(
                request=seq.request,
                ttft_ns=seq.first_token_ns,
                completion_ns=seq.last_token_ns,
                batch_size=step_batch,
                queue_ns=max(0.0, seq.first_token_ns
                             - latency.ttft_ns(model, 1, seq.request.prompt_len)),
            ))
        # Admit newly arrived requests at the step boundary.
        admit()

    return ServingReport(outcomes=outcomes)
