"""Ablation — TKLQT classification vs the framework-tax baseline [14].

The paper argues TKLQT pinpoints the launch path directly while the
latency-curve method only observes aggregate flatness. This ablation runs
both classifiers on identical sweeps and reports where their transition
points land.
"""

from _harness import BATCH_LADDER, BENCH_ENGINE, report, run_once
from repro.analysis import classify_latency_curve, run_batch_sweep
from repro.hardware import AMD_A100, GH200, INTEL_H100
from repro.viz import render_table
from repro.workloads import BERT_BASE, GPT2

PLATFORMS = ("Intel+H100", "AMD+A100", "GH200")


def _both_classifiers(model):
    sweep = run_batch_sweep(model, (INTEL_H100, AMD_A100, GH200), BATCH_LADDER,
                            seq_len=512, engine_config=BENCH_ENGINE)
    out = {}
    for platform in PLATFORMS:
        tklqt_star = sweep.transition(platform).batch_size
        framework = classify_latency_curve(
            list(sweep.batch_sizes), sweep.ttft_series(platform))
        out[platform] = (tklqt_star, framework.transition_batch_size)
    return out


def test_ablation_tklqt_vs_framework_tax(benchmark):
    results = run_once(
        benchmark,
        lambda: {model.name: _both_classifiers(model)
                 for model in (BERT_BASE, GPT2)})
    rows = []
    for model_name, per_platform in results.items():
        for platform, (tklqt, framework) in per_platform.items():
            rows.append([model_name, platform, str(tklqt), str(framework)])
    report(render_table(
        ["model", "platform", "TKLQT star", "framework-tax transition"], rows,
        title="Ablation: transition batch size per classifier"))

    for per_platform in results.values():
        for tklqt, framework in per_platform.values():
            # Both classifiers must find a transition within the sweep, and
            # agree within one batch doubling (the paper's 'similar
            # classification' claim).
            assert tklqt is not None and framework is not None
            assert 0.5 <= framework / tklqt <= 2.0
