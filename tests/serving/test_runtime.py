"""The sim-backed serving runtime: admission queue, sessions, scale-out."""

import pytest

from repro.check import check_serving_schedules, schedules_from_trace
from repro.check.tracelint import lint_trace
from repro.engine import TPConfig
from repro.errors import ConfigurationError, SimulationError
from repro.hardware import INTEL_H100
from repro.obs import RunRecorder, recording_to_trace
from repro.serving import (
    AdmissionQueue,
    ContinuousBatchPolicy,
    LatencyModel,
    Request,
    StaticBatchPolicy,
    poisson_requests,
    simulate_serving,
)
from repro.workloads import GPT2
from tests import scenarios


@pytest.fixture(scope="module")
def latency():
    return LatencyModel(INTEL_H100)


@pytest.fixture(scope="module")
def overloaded_stream():
    return scenarios.overloaded_stream()


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------

def _requests(arrivals):
    return [Request(request_id=i, arrival_ns=t, prompt_len=64,
                    output_tokens=4) for i, t in enumerate(arrivals)]


def test_admission_queue_rejects_empty():
    with pytest.raises(ConfigurationError):
        AdmissionQueue([])


def test_admission_queue_orders_by_arrival():
    queue = AdmissionQueue(_requests([30.0, 10.0, 20.0]))
    assert [e.request.request_id for e in queue.entries] == [1, 2, 0]


def test_claim_is_oldest_first_and_bounded():
    queue = AdmissionQueue(_requests([0.0, 1.0, 2.0, 50.0]))
    claimed = queue.claim(now=10.0, limit=2)
    assert [r.request_id for r in claimed] == [0, 1]
    assert not queue.all_claimed()
    assert queue.first_unclaimed().request.request_id == 2


def test_claim_batch_rejects_claimed_seed():
    queue = AdmissionQueue(_requests([0.0, 1.0]))
    seed = queue.first_unclaimed()
    queue.claim(now=5.0, limit=1)
    with pytest.raises(SimulationError):
        queue.claim_batch(seed, limit=4, cutoff=10.0)


def test_depth_counts_only_arrived_unclaimed():
    queue = AdmissionQueue(_requests([0.0, 5.0, 100.0]))
    assert queue.depth(now=10.0) == 2
    queue.claim(now=10.0, limit=1)
    assert queue.depth(now=10.0) == 1


# ----------------------------------------------------------------------
# Runtime + scale-out
# ----------------------------------------------------------------------

def test_replicas_must_be_positive(latency, overloaded_stream):
    with pytest.raises(ConfigurationError):
        simulate_serving(overloaded_stream, GPT2, latency, replicas=0)


def test_unknown_policy_rejected(latency, overloaded_stream):
    with pytest.raises(ConfigurationError):
        simulate_serving(overloaded_stream, GPT2, latency, policy=object())


def test_non_request_input_rejected(latency):
    with pytest.raises(ConfigurationError):
        simulate_serving(["nope"], GPT2, latency)


def test_every_request_served_once(latency, overloaded_stream):
    result = simulate_serving(overloaded_stream, GPT2, latency,
                              policy=ContinuousBatchPolicy(max_active=8),
                              replicas=2)
    served = [o.request.request_id for o in result.report.outcomes]
    assert sorted(served) == sorted(r.request_id for r in overloaded_stream)


def test_scale_out_beats_one_replica(latency, overloaded_stream):
    """The headline: 4 replicas on a saturating stream more than double
    the tokens/s of 1 replica (the acceptance bar for this refactor)."""
    policy = ContinuousBatchPolicy(max_active=8)
    single = simulate_serving(overloaded_stream, GPT2, latency, policy=policy,
                              replicas=1)
    quad = simulate_serving(overloaded_stream, GPT2, latency, policy=policy,
                            replicas=4)
    assert (quad.throughput_tokens_per_s
            > 2.0 * single.throughput_tokens_per_s)


def test_work_spreads_across_replicas(latency, overloaded_stream):
    result = simulate_serving(overloaded_stream, GPT2, latency,
                              policy=ContinuousBatchPolicy(max_active=8),
                              replicas=4)
    assert len(result.replicas) == 4
    assert all(stats.requests > 0 for stats in result.replicas)
    assert (sum(stats.requests for stats in result.replicas)
            == len(overloaded_stream))
    assert {o.replica for o in result.report.outcomes} == {0, 1, 2, 3}


def test_static_policy_scales_out_too(latency, overloaded_stream):
    result = simulate_serving(overloaded_stream, GPT2, latency,
                              policy=StaticBatchPolicy(max_batch_size=8),
                              replicas=2)
    assert len(result.report.outcomes) == len(overloaded_stream)
    assert {o.replica for o in result.report.outcomes} == {0, 1}


def test_default_policy_is_continuous(latency):
    stream = poisson_requests(rate_per_s=20, duration_s=0.3, seed=1)
    result = simulate_serving(stream, GPT2, latency)
    assert len(result.report.outcomes) == len(stream)


# ----------------------------------------------------------------------
# Checkability: serving runs satisfy the static verifiers
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def tp2_run(overloaded_stream):
    latency_tp = LatencyModel(INTEL_H100, tp=TPConfig(degree=2))
    recorder = RunRecorder()
    result = simulate_serving(overloaded_stream, GPT2, latency_tp,
                              policy=ContinuousBatchPolicy(max_active=8),
                              replicas=2, recorder=recorder)
    return result, recorder, latency_tp


def test_serving_schedules_check_clean(tp2_run):
    result, _recorder, _latency = tp2_run
    report = check_serving_schedules(result.sessions)
    assert report.ok
    assert not report.findings


def test_multi_replica_trace_lints_clean(tp2_run):
    result, recorder, latency_tp = tp2_run
    trace = recording_to_trace(recorder, latency_tp, GPT2,
                               devices_per_replica=result.devices_per_replica)
    assert lint_trace(trace) == []


def test_trace_schedules_cover_all_devices(tp2_run):
    result, recorder, latency_tp = tp2_run
    trace = recording_to_trace(recorder, latency_tp, GPT2,
                               devices_per_replica=result.devices_per_replica)
    schedules = schedules_from_trace(trace)
    # 2 replicas x TP=2 devices, offset into disjoint device ids.
    assert [s.device for s in schedules] == [0, 1, 2, 3]
    assert all(s.items for s in schedules)
