"""KvManager: policy engine, event log, interconnect-priced swaps."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.hardware import get_platform
from repro.kvcache import (
    KvCacheConfig,
    KvManager,
    KvPolicy,
    block_bytes,
    pool_capacity_blocks,
)
from repro.obs import RunRecorder
from repro.workloads import GPT2

A100 = get_platform("AMD+A100")
GH200 = get_platform("GH200")


def make_manager(policy=KvPolicy.OFFLOAD, capacity=64, platform=A100,
                 recorder=None):
    return KvManager(GPT2, platform, policy, capacity, recorder=recorder)


def test_config_validation():
    assert not KvCacheConfig().enabled
    assert KvCacheConfig(policy=KvPolicy.RECOMPUTE).enabled
    with pytest.raises(ConfigurationError):
        KvCacheConfig(pool_gib=-1.0)
    with pytest.raises(ConfigurationError):
        KvCacheConfig(block_tokens=0)


def test_manager_refuses_policy_none():
    with pytest.raises(ConfigurationError):
        make_manager(policy=KvPolicy.NONE)


def test_for_gpu_derives_capacity_from_pool_arithmetic():
    config = KvCacheConfig(policy=KvPolicy.OFFLOAD, pool_gib=0.05)
    manager = KvManager.for_gpu(GPT2, GH200, config)
    assert manager.capacity_blocks == pool_capacity_blocks(
        GPT2, GH200.gpu, pool_gib=0.05)


def test_allocation_lifecycle_logs_events():
    manager = make_manager()
    assert manager.try_allocate(1, 4, ts_ns=0.0)
    assert manager.grow(1, tokens=5 * manager.block_tokens, ts_ns=10.0)
    assert manager.grow(1, tokens=5 * manager.block_tokens, ts_ns=11.0)
    assert manager.free(1, ts_ns=20.0) == 5
    kinds = [e.kind for e in manager.events]
    assert kinds == ["alloc", "grow", "free"]  # the no-op grow logs nothing
    assert [e.allocated for e in manager.events] == [4, 5, 0]


def test_growth_delta_counts_missing_blocks_only():
    manager = make_manager()
    manager.try_allocate(7, 4, ts_ns=0.0)
    assert manager.growth_delta(7, 4 * manager.block_tokens) == 0
    assert manager.growth_delta(7, 4 * manager.block_tokens + 1) == 1


def test_try_allocate_respects_capacity():
    manager = make_manager(capacity=4)
    assert manager.try_allocate(1, 3, ts_ns=0.0)
    assert not manager.try_allocate(2, 2, ts_ns=1.0)
    assert [e.kind for e in manager.events] == ["alloc"]


def test_preempt_frees_blocks_and_counts():
    manager = make_manager(policy=KvPolicy.RECOMPUTE)
    manager.try_allocate(1, 6, ts_ns=0.0)
    assert manager.preempt(1, ts_ns=5.0) == 6
    assert manager.pool.allocated == 0
    assert manager.preemptions == 1
    with pytest.raises(SimulationError):
        manager.preempt(1, ts_ns=6.0)


def test_swap_out_prices_transfer_over_the_link():
    manager = make_manager(platform=A100)
    manager.try_allocate(1, 8, ts_ns=0.0)
    transfer = manager.swap_out(1, ts_ns=10.0)
    assert transfer == A100.transfer_ns(8 * block_bytes(GPT2))
    assert manager.is_swapped_out(1)
    assert manager.host_blocks == 8
    assert manager.pool.allocated == 0
    assert manager.swapped_blocks == 8


def test_coupling_sets_the_swap_price():
    mi300a = get_platform("MI300A")
    lc = make_manager(platform=A100)
    cc = make_manager(platform=GH200)
    tc = make_manager(platform=mi300a)
    for manager in (lc, cc, tc):
        manager.try_allocate(1, 8, ts_ns=0.0)
    lc_ns = lc.swap_out(1, ts_ns=0.0)
    cc_ns = cc.swap_out(1, ts_ns=0.0)
    tc_ns = tc.swap_out(1, ts_ns=0.0)
    # NVLink-C2C moves the same bytes ~14x faster than PCIe Gen4; the
    # shared-physical-memory APU pays only the base latency.
    assert tc_ns < cc_ns < lc_ns
    assert cc_ns == GH200.transfer_ns(8 * block_bytes(GPT2))
    assert tc_ns == mi300a.interconnect.base_latency_ns


def test_swap_in_returns_none_when_pool_is_full():
    manager = make_manager(capacity=8)
    manager.try_allocate(1, 6, ts_ns=0.0)
    manager.swap_out(1, ts_ns=1.0)
    manager.try_allocate(2, 6, ts_ns=2.0)
    assert manager.swap_in(1, ts_ns=3.0) is None
    manager.free(2, ts_ns=4.0)
    assert manager.swap_in(1, ts_ns=5.0) is not None
    assert not manager.is_swapped_out(1)
    with pytest.raises(SimulationError):
        manager.swap_in(99, ts_ns=6.0)


def test_swap_out_requires_resident_blocks():
    manager = make_manager()
    with pytest.raises(SimulationError):
        manager.swap_out(1, ts_ns=0.0)


def test_events_mirror_into_the_recorder():
    recorder = RunRecorder()
    manager = make_manager(recorder=recorder)
    manager.try_allocate(1, 4, ts_ns=0.0)
    manager.swap_out(1, ts_ns=1.0)
    manager.swap_in(1, ts_ns=2.0)
    manager.free(1, ts_ns=3.0)
    manager.note_decode([1], ts_ns=2.5)
    assert len(recorder.kv_events) == len(manager.events) == 5
    counters = recorder.counters.as_dict()
    assert counters["kv_swap_out"] == 1
    assert counters["kv_swap_in"] == 1
