"""Fig. 3 — TTFT speedups from FlashAttention-2 and torch.compile
max-autotune over eager, for popular 7B decoder models on Intel+H100."""

from _harness import BENCH_ENGINE, report, run_once
from repro.engine import ExecutionMode, run
from repro.hardware import INTEL_H100
from repro.skip import compute_metrics
from repro.viz import render_table
from repro.workloads import SEVEN_B_MODELS


def _sweep_models():
    rows = {}
    for model in SEVEN_B_MODELS:
        latencies = {}
        for mode in (ExecutionMode.EAGER, ExecutionMode.FLASH_ATTENTION,
                     ExecutionMode.COMPILE_MAX_AUTOTUNE):
            result = run(model, INTEL_H100, batch_size=1, seq_len=1024,
                         mode=mode, config=BENCH_ENGINE)
            latencies[mode] = compute_metrics(result.trace).inference_latency_ns
        rows[model.name] = latencies
    return rows


def test_fig3_7b_fusion_speedups(benchmark):
    results = run_once(benchmark, _sweep_models)
    table = []
    for name, latencies in results.items():
        eager = latencies[ExecutionMode.EAGER]
        fa2 = eager / latencies[ExecutionMode.FLASH_ATTENTION]
        autotune = eager / latencies[ExecutionMode.COMPILE_MAX_AUTOTUNE]
        table.append([name, f"{fa2:.3f}", f"{autotune:.3f}"])
    report(render_table(
        ["model", "FA2 speedup", "max-autotune speedup"], table,
        title="Fig. 3: TTFT speedups over eager — 7B decoders, BS=1 seq=1024, Intel+H100"))

    for name, latencies in results.items():
        eager = latencies[ExecutionMode.EAGER]
        fa2 = eager / latencies[ExecutionMode.FLASH_ATTENTION]
        autotune = eager / latencies[ExecutionMode.COMPILE_MAX_AUTOTUNE]
        # Shape: both fused modes beat eager; max-autotune (which subsumes
        # FlashAttention + CUDA graphs + faster GEMMs) beats FA2 alone.
        assert 1.0 < fa2 < 2.0, name
        assert autotune > fa2, name
        assert autotune < 2.5, name
