"""Recommendation-model workload (DLRM-style).

The paper's future work (Section VI) plans to broaden the workload scope to
recommendation models. A DLRM forward pass is the extreme case of the
paper's thesis: dozens of tiny embedding-bag gathers plus small MLP GEMMs
mean the launch tax dominates far beyond Transformer batch sizes — exactly
the population proximity-score fusion targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads import ops
from repro.workloads.graph import OperatorGraph, Phase
from repro.workloads.ops import OpKind


@dataclass(frozen=True)
class DlrmConfig:
    """DLRM-style recommendation model.

    Attributes:
        name: Model id.
        num_tables: Sparse embedding tables (one gather each per sample).
        embedding_dim: Embedding vector width (shared by all tables).
        rows_per_table: Rows per embedding table.
        dense_features: Dense input feature count.
        bottom_mlp: Layer widths of the dense-feature MLP (last must equal
            ``embedding_dim`` so the interaction is square).
        top_mlp: Layer widths of the post-interaction MLP (last is 1 — the
            click-probability logit).
    """

    name: str = "dlrm-small"
    num_tables: int = 26
    embedding_dim: int = 64
    rows_per_table: int = 1_000_000
    dense_features: int = 13
    bottom_mlp: tuple[int, ...] = (512, 256, 64)
    top_mlp: tuple[int, ...] = (512, 256, 1)

    def __post_init__(self) -> None:
        if self.num_tables <= 0 or self.embedding_dim <= 0:
            raise ConfigurationError("tables and embedding_dim must be positive")
        if not self.bottom_mlp or not self.top_mlp:
            raise ConfigurationError("MLP stacks must be non-empty")
        if self.bottom_mlp[-1] != self.embedding_dim:
            raise ConfigurationError(
                "bottom MLP must project dense features to embedding_dim")

    @property
    def interaction_inputs(self) -> int:
        """Vectors entering the pairwise interaction (tables + dense)."""
        return self.num_tables + 1

    @property
    def interaction_features(self) -> int:
        """Size of the flattened pairwise-interaction output."""
        pairs = self.interaction_inputs * (self.interaction_inputs - 1) // 2
        return pairs + self.embedding_dim

    def param_count(self) -> int:
        total = self.num_tables * self.rows_per_table * self.embedding_dim
        widths = [self.dense_features, *self.bottom_mlp]
        for a, b in zip(widths, widths[1:]):
            total += a * b + b
        widths = [self.interaction_features, *self.top_mlp]
        for a, b in zip(widths, widths[1:]):
            total += a * b + b
        return total


DLRM_SMALL = DlrmConfig()

DLRM_LARGE = DlrmConfig(
    name="dlrm-large",
    num_tables=64,
    embedding_dim=128,
    rows_per_table=4_000_000,
    bottom_mlp=(1024, 512, 128),
    top_mlp=(1024, 512, 256, 1),
)


def build_dlrm_graph(config: DlrmConfig, batch_size: int) -> OperatorGraph:
    """One DLRM inference pass as an operator stream."""
    if batch_size <= 0:
        raise ConfigurationError("batch_size must be positive")
    graph = OperatorGraph(model_name=config.name, phase=Phase.PREFILL,
                          batch_size=batch_size, seq_len=1)

    # Bottom MLP over dense features.
    widths = [config.dense_features, *config.bottom_mlp]
    for i, (in_f, out_f) in enumerate(zip(widths, widths[1:])):
        graph.append(ops.linear(f"bottom_mlp.{i}", batch_size, in_f, out_f))
        graph.append(ops.elementwise(OpKind.GELU, f"bottom_mlp.{i}.relu",
                                     batch_size * out_f, flops_per_element=1.0))

    # One embedding-bag gather per sparse table — the launch-tax hot spot.
    for table in range(config.num_tables):
        graph.append(ops.embedding(f"emb_table.{table}", batch_size,
                                   config.embedding_dim,
                                   config.rows_per_table))

    # Pairwise feature interaction: stack + batched dot products + flatten.
    vectors = config.interaction_inputs
    graph.append(ops.reshape_copy("interaction.stack",
                                  batch_size * vectors * config.embedding_dim))
    graph.append(ops.matmul("interaction.pairwise", batch_size, vectors,
                            vectors, config.embedding_dim))
    graph.append(ops.reshape_copy("interaction.flatten",
                                  batch_size * config.interaction_features))

    # Top MLP down to the click logit.
    widths = [config.interaction_features, *config.top_mlp]
    last = len(widths) - 2
    for i, (in_f, out_f) in enumerate(zip(widths, widths[1:])):
        graph.append(ops.linear(f"top_mlp.{i}", batch_size, in_f, out_f))
        if i < last:
            graph.append(ops.elementwise(OpKind.GELU, f"top_mlp.{i}.relu",
                                         batch_size * out_f,
                                         flops_per_element=1.0))
    graph.append(ops.elementwise(OpKind.TANH, "predict.sigmoid", batch_size))
    return graph
