"""Simulation observability: structured run recording and trace export.

The serving and engine layers accept an optional :class:`RunRecorder`; a
recorded run summarizes into percentile tables, renders as a timeline, and
exports (via :func:`recording_to_trace` + :mod:`repro.trace.chrome`) as a
Chrome trace that SKIP's own analysis pipeline consumes unmodified. Runs
with causality logging on (``SimCore(causality=...)``) additionally export
a JSON sidecar (:func:`dump_causality`) that ``repro check hb`` verifies
offline.
"""

from repro.obs.events import EngineShape, RequestSpan, StepEvent, StepKind
from repro.obs.stats import CounterSet, Histogram, HistogramSummary
from repro.obs.recorder import RunRecorder, RunSummary
from repro.obs.export import dump_causality, load_causality, recording_to_trace

__all__ = [
    "CounterSet",
    "EngineShape",
    "Histogram",
    "HistogramSummary",
    "RequestSpan",
    "RunRecorder",
    "RunSummary",
    "StepEvent",
    "StepKind",
    "dump_causality",
    "load_causality",
    "recording_to_trace",
]
