"""Discrete-event simulation core.

``repro.sim`` is the substrate the execution engine runs on: a deterministic
event queue (:mod:`repro.sim.queue`), named resources — CPU dispatch threads,
GPU devices with in-order streams, GPU<->GPU interconnect links
(:mod:`repro.sim.resources`) — and a process scheduler with rendezvous
synchronization for collectives (:mod:`repro.sim.core`).

The engine's execution modes are written as *processes* on this core
(:mod:`repro.engine.processes`); the core itself knows nothing about
operators, kernels, or traces, so new resource kinds (more streams per
device, heterogeneous devices, multi-link topologies) plug in without
touching the engine.
"""

from repro.sim.core import Rendezvous, SimCore
from repro.sim.queue import EventQueue
from repro.sim.resources import (
    CpuThread,
    GpuDevice,
    LinkResource,
    StreamResource,
)

__all__ = [
    "CpuThread",
    "EventQueue",
    "GpuDevice",
    "LinkResource",
    "Rendezvous",
    "SimCore",
    "StreamResource",
]
