"""Kernel-chain mining and proximity scores (Section III-C, Eq. 6).

The proximity score of a chain ``C = (k_i, ..., k_{i+L-1})`` is
``PS(C) = f(C) / f(k_i)`` — the likelihood that executing ``k_i`` is followed
by exactly this chain. ``PS(C) = 1`` identifies a deterministic pattern, the
ideal fusion candidate.

Mining operates on *segments*: kernel-name sequences in launch order,
delimited by CPU/GPU synchronization (one segment per profiled iteration for
the engine's traces), matching the paper's "sequences separated by
intervening CPU operator dependency".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError
from repro.trace.trace import Trace


def kernel_segments(trace: Trace) -> list[list[str]]:
    """Kernel-name sequences per iteration, in launch order."""
    if not trace.iterations:
        raise AnalysisError("trace has no iteration marks")
    segments: list[list[str]] = []
    for mark in trace.iterations:
        kernels = trace.kernels_in_iteration(mark.index)
        # Launch order: correlation ids ascend in launch order for launched
        # kernels; graph-replayed kernels (negative ids) keep time order.
        launched = sorted((k for k in kernels if k.correlation_id >= 0),
                          key=lambda k: k.correlation_id)
        replayed = sorted((k for k in kernels if k.correlation_id < 0),
                          key=lambda k: (k.ts, k.event_id))
        segments.append([k.name for k in [*launched, *replayed]])
    return segments


@dataclass(frozen=True)
class ChainStats:
    """Mining statistics for one distinct chain."""

    chain: tuple[str, ...]
    frequency: int
    anchor_frequency: int

    @property
    def proximity_score(self) -> float:
        """Eq. 6: f(C) / f(k_i)."""
        return self.frequency / self.anchor_frequency

    @property
    def length(self) -> int:
        return len(self.chain)


@dataclass
class MiningResult:
    """All distinct chains of one length mined from a set of segments."""

    length: int
    chains: list[ChainStats]
    total_instances: int

    @property
    def unique_candidates(self) -> int:
        return len(self.chains)

    def deterministic(self, threshold: float = 1.0) -> list[ChainStats]:
        """Chains whose proximity score meets the threshold."""
        if not (0 < threshold <= 1.0):
            raise AnalysisError("threshold must be in (0, 1]")
        return [c for c in self.chains if c.proximity_score >= threshold]


def mine_chains(segments: Sequence[Sequence[str]], length: int) -> MiningResult:
    """Mine all kernel chains of ``length`` from the segments.

    Args:
        segments: Kernel-name sequences (one per sync-delimited region).
        length: Chain length L (>= 2).
    """
    if length < 2:
        raise AnalysisError("chain length must be >= 2")
    if not segments:
        raise AnalysisError("no segments to mine")

    window_counts: Counter[tuple[str, ...]] = Counter()
    anchor_counts: Counter[str] = Counter()
    for segment in segments:
        anchor_counts.update(segment)
        for i in range(len(segment) - length + 1):
            window_counts[tuple(segment[i:i + length])] += 1

    chains = [
        ChainStats(chain=chain, frequency=freq,
                   anchor_frequency=anchor_counts[chain[0]])
        for chain, freq in window_counts.items()
    ]
    chains.sort(key=lambda c: (-c.frequency, c.chain))
    return MiningResult(length=length, chains=chains,
                        total_instances=sum(window_counts.values()))


def select_nonoverlapping(segment: Sequence[str],
                          chains: Sequence[ChainStats] | Sequence[tuple[str, ...]]
                          ) -> list[tuple[int, tuple[str, ...]]]:
    """Greedy left-to-right non-overlapping chain instances in one segment.

    Only non-overlapping instances can actually be fused; this mirrors the
    paper's "actual deterministic kernel candidates that can be fused".
    Returns (start index, chain) pairs.
    """
    chain_set: set[tuple[str, ...]] = set()
    for chain in chains:
        chain_set.add(chain.chain if isinstance(chain, ChainStats) else tuple(chain))
    if not chain_set:
        return []
    lengths = sorted({len(c) for c in chain_set}, reverse=True)

    selected: list[tuple[int, tuple[str, ...]]] = []
    i = 0
    n = len(segment)
    while i < n:
        matched = None
        for length in lengths:
            if i + length <= n:
                window = tuple(segment[i:i + length])
                if window in chain_set:
                    matched = window
                    break
        if matched is None:
            i += 1
        else:
            selected.append((i, matched))
            i += len(matched)
    return selected
