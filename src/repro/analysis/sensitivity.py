"""Calibration sensitivity: which anchors move when a knob moves?

The calibration (docs/calibration.md) fixes a handful of constants from the
paper's measurements. This module quantifies how robust the reproduced
results are to those choices: perturb one knob by ±X% and measure the
relative change of a target metric. Anchors with small sensitivities are
robust conclusions; large ones mark where the simulation leans on the
calibration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.whatif import scaled_platform
from repro.engine.executor import EngineConfig, run
from repro.errors import AnalysisError
from repro.hardware.platform import Platform
from repro.skip.metrics import compute_metrics
from repro.workloads.config import ModelConfig

_FAST = EngineConfig(iterations=1)


class Knob(enum.Enum):
    """Perturbable calibration constants."""

    CPU_DISPATCH = "cpu-dispatch"
    CPU_RUNTIME_CALL = "cpu-runtime-call"
    GPU_COMPUTE = "gpu-compute"
    GPU_BANDWIDTH = "gpu-bandwidth"


def _perturbed(platform: Platform, knob: Knob, factor: float) -> Platform:
    kwargs = {
        Knob.CPU_DISPATCH: {"cpu_dispatch_scale": factor},
        Knob.CPU_RUNTIME_CALL: {"cpu_runtime_call_scale": factor},
        Knob.GPU_COMPUTE: {"gpu_compute_scale": factor},
        Knob.GPU_BANDWIDTH: {"gpu_bandwidth_scale": factor},
    }[knob]
    return scaled_platform(platform, **kwargs)


@dataclass(frozen=True)
class Sensitivity:
    """Elasticity of one metric to one knob on one workload point."""

    knob: Knob
    platform: str
    metric: str
    baseline: float
    perturbed_up: float      # metric with the knob scaled up
    perturbed_down: float    # metric with the knob scaled down
    perturbation: float      # relative knob change (e.g. 0.1 = +/-10%)

    @property
    def elasticity(self) -> float:
        """d(metric)/metric per d(knob)/knob (central difference)."""
        if self.baseline == 0:
            return 0.0
        return ((self.perturbed_up - self.perturbed_down)
                / (2 * self.perturbation * self.baseline))


def metric_sensitivity(
    model: ModelConfig,
    platform: Platform,
    knob: Knob,
    metric: Callable[..., float] | None = None,
    metric_name: str = "inference_latency_ns",
    batch_size: int = 1,
    seq_len: int = 512,
    perturbation: float = 0.1,
    engine_config: EngineConfig = _FAST,
) -> Sensitivity:
    """Central-difference elasticity of one metric to one knob.

    Args:
        metric: Optional custom extractor taking SkipMetrics; by default
            reads ``metric_name`` off the metrics object.
        perturbation: Relative knob change (0.1 = scale the component's
            *speed* by 1.1x and 1/1.1x).
    """
    if not (0 < perturbation < 1):
        raise AnalysisError("perturbation must be in (0, 1)")

    def measure(p: Platform) -> float:
        result = run(model, p, batch_size=batch_size, seq_len=seq_len,
                     config=engine_config)
        metrics = compute_metrics(result.trace)
        if metric is not None:
            return metric(metrics)
        return getattr(metrics, metric_name)

    baseline = measure(platform)
    up = measure(_perturbed(platform, knob, 1 + perturbation))
    down = measure(_perturbed(platform, knob, 1 / (1 + perturbation)))
    return Sensitivity(
        knob=knob,
        platform=platform.name,
        metric=metric_name,
        baseline=baseline,
        perturbed_up=up,
        perturbed_down=down,
        perturbation=perturbation,
    )


def sensitivity_sweep(
    model: ModelConfig,
    platform: Platform,
    knobs: Sequence[Knob] = tuple(Knob),
    batch_size: int = 1,
    seq_len: int = 512,
    perturbation: float = 0.1,
    engine_config: EngineConfig = _FAST,
) -> list[Sensitivity]:
    """Elasticities of inference latency to every knob."""
    return [
        metric_sensitivity(model, platform, knob, batch_size=batch_size,
                           seq_len=seq_len, perturbation=perturbation,
                           engine_config=engine_config)
        for knob in knobs
    ]
