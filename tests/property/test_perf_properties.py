"""Property tests locking the perf fast paths (sampling, lowering cache).

Two of the fast paths trade recorded *detail* or repeated *work* for speed
while promising unchanged results. Hypothesis searches the parameter space
for a counterexample:

* sampled recording (``RunRecorder(sample_every=k)``) must keep every
  aggregate and counter exact for **any** k and any arrival seed — only the
  per-request spans/histograms thin out;
* a lowering-cache hit must be structurally equal to a fresh lowering and
  pass the ``repro check graph`` rules (G001-G009) for any shape and mode.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import check_lowering, check_sharding
from repro.engine.cache import LOWERING_CACHE
from repro.engine.executor import run
from repro.engine.modes import ExecutionMode
from repro.engine.tp import TPConfig, shard_lowered
from repro.hardware import get_platform
from repro.obs import RunRecorder
from repro.serving import (
    ContinuousBatchPolicy,
    LatencyModel,
    poisson_requests,
    simulate_serving,
)
from repro.workloads import get_model

INTEL_H100 = get_platform("Intel+H100")
GPT2 = get_model("gpt2")


def _serve(recorder: RunRecorder, seed: int) -> None:
    requests = poisson_requests(rate_per_s=60, duration_s=0.1, prompt_len=64,
                                output_tokens=4, seed=seed)
    simulate_serving(requests, GPT2, LatencyModel(INTEL_H100),
                     policy=ContinuousBatchPolicy(max_active=4),
                     recorder=recorder)


@given(k=st.integers(1, 12), seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_sampled_recording_preserves_exact_aggregates(k, seed):
    full = RunRecorder()
    sampled = RunRecorder(sample_every=k)
    _serve(full, seed)
    _serve(sampled, seed)

    assert sampled.aggregates == full.aggregates
    assert sampled.counters.as_dict() == full.counters.as_dict()
    # Engine steps are per-step, never sampled: the timeline is complete.
    assert sampled.steps == full.steps
    assert (sampled.summary().requests_completed
            == full.summary().requests_completed)
    # What sampling *does* drop: spans thin out to the 1-in-k population.
    assert set(sampled.spans) == {rid for rid in full.spans if rid % k == 0}


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_sample_every_one_is_bit_identical_to_default(seed):
    default = RunRecorder()
    explicit = RunRecorder(sample_every=1)
    _serve(default, seed)
    _serve(explicit, seed)
    assert explicit.spans == default.spans
    assert explicit.aggregates == default.aggregates
    assert dataclasses.asdict(explicit.summary()) == \
        dataclasses.asdict(default.summary())


@given(
    batch=st.sampled_from([1, 2, 4, 8]),
    seq=st.sampled_from([64, 128, 256]),
    mode=st.sampled_from(list(ExecutionMode)),
    degree=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=20, deadline=None)
def test_cache_hit_lowering_equals_fresh_and_passes_graph_checks(
        batch, seq, mode, degree):
    if mode is ExecutionMode.PROXIMITY_FUSED:
        return  # requires a caller-owned fusion plan; the cache bypasses it
    kwargs = dict(batch_size=batch, seq_len=seq, mode=mode)
    if degree > 1:
        kwargs["tp"] = TPConfig(degree=degree)
    LOWERING_CACHE.clear()
    with LOWERING_CACHE.disabled():
        fresh = run(GPT2, INTEL_H100, **kwargs)
    run(GPT2, INTEL_H100, **kwargs)           # cold: populates the cache
    cached = run(GPT2, INTEL_H100, **kwargs)  # warm: must hit
    assert LOWERING_CACHE.stats.lowering_hits >= 1

    assert cached.lowered == fresh.lowered
    assert [op.label for op in cached.graph.ops] == \
        [op.label for op in fresh.graph.ops]
    # The cached stream satisfies the same structural invariants repro
    # check graph enforces (G006-G009 directly, G001-G005 across sharding).
    assert check_lowering(cached.lowered, cached.tp or None) == []
    if degree > 1:
        with LOWERING_CACHE.disabled():
            pre_shard = run(GPT2, INTEL_H100, batch_size=batch, seq_len=seq,
                            mode=mode).lowered
        tp = TPConfig(degree=degree)
        assert check_sharding(pre_shard, shard_lowered(pre_shard, tp),
                              tp) == []
