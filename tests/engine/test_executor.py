"""Discrete-event executor: trace structure and timing invariants."""

import pytest

from repro.engine import EngineConfig, ExecutionMode, FusionPlan, run
from repro.errors import ConfigurationError
from repro.hardware import GH200, INTEL_H100
from repro.trace.events import DEVICE_SYNCHRONIZE, GRAPH_LAUNCH
from repro.workloads import BERT_BASE, GPT2, build_graph

FAST = EngineConfig(iterations=1)
TWO_ITER = EngineConfig(iterations=2)


@pytest.fixture(scope="module")
def bert_result():
    return run(BERT_BASE, INTEL_H100, batch_size=1, seq_len=128, config=TWO_ITER)


def test_trace_validates(bert_result):
    bert_result.trace.validate()


def test_one_launch_call_per_kernel(bert_result):
    trace = bert_result.trace
    assert len(trace.launches) == len(trace.kernels)


def test_kernel_count_matches_lowering(bert_result):
    per_iter = bert_result.kernels_per_iteration
    assert len(bert_result.trace.kernels) == per_iter * TWO_ITER.iterations


def test_kernels_start_after_launch_latency(bert_result):
    trace = bert_result.trace
    kernels = trace.kernels_by_correlation()
    for call in trace.launches:
        kernel = kernels[call.correlation_id]
        delta = kernel.ts - call.ts
        assert delta >= INTEL_H100.launch_latency_ns - 1e-6


def test_gpu_stream_is_in_order(bert_result):
    kernels = sorted(bert_result.trace.kernels, key=lambda k: k.correlation_id)
    for prev, cur in zip(kernels, kernels[1:]):
        assert cur.ts >= prev.ts_end - 1e-6


def test_iterations_do_not_overlap(bert_result):
    marks = bert_result.trace.iterations
    assert len(marks) == 2
    assert marks[1].ts >= marks[0].ts_end


def test_sync_at_end_of_each_iteration(bert_result):
    syncs = [r for r in bert_result.trace.runtime_calls
             if r.name == DEVICE_SYNCHRONIZE]
    assert len(syncs) == 2


def test_iterations_are_time_shifted_copies(bert_result):
    """The engine is deterministic; iteration k is iteration 0 shifted."""
    trace = bert_result.trace
    k0 = trace.kernels_in_iteration(0)
    k1 = trace.kernels_in_iteration(1)
    assert [k.name for k in k0] == [k.name for k in k1]
    assert [k.dur for k in k0] == pytest.approx([k.dur for k in k1])


def test_run_accepts_prebuilt_graph():
    graph = build_graph(BERT_BASE, 2, 64)
    result = run(graph, INTEL_H100, config=FAST)
    assert result.graph is graph
    assert result.trace.metadata["batch_size"] == 2


def test_flash_mode_reduces_kernel_count():
    eager = run(BERT_BASE, INTEL_H100, batch_size=1, seq_len=128, config=FAST)
    flash = run(BERT_BASE, INTEL_H100, batch_size=1, seq_len=128,
                mode=ExecutionMode.FLASH_ATTENTION, config=FAST)
    assert flash.kernels_per_iteration < eager.kernels_per_iteration
    assert any("flash_fwd" in k.name for k in flash.trace.kernels)


def test_compile_default_fuses_elementwise():
    eager = run(GPT2, INTEL_H100, batch_size=1, seq_len=128, config=FAST)
    compiled = run(GPT2, INTEL_H100, batch_size=1, seq_len=128,
                   mode=ExecutionMode.COMPILE_DEFAULT, config=FAST)
    assert compiled.kernels_per_iteration < eager.kernels_per_iteration
    assert any("triton_fused" in k.name for k in compiled.trace.kernels)


def test_graph_mode_single_launch():
    result = run(GPT2, INTEL_H100, batch_size=1, seq_len=128,
                 mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD, config=FAST)
    graph_launches = [r for r in result.trace.runtime_calls
                      if r.name == GRAPH_LAUNCH]
    assert len(graph_launches) == 1
    assert all(k.correlation_id < 0 for k in result.trace.kernels)
    assert not result.trace.launches or all(
        r.name == GRAPH_LAUNCH for r in result.trace.launches)


def test_proximity_mode_requires_plan():
    with pytest.raises(ConfigurationError):
        run(GPT2, INTEL_H100, mode=ExecutionMode.PROXIMITY_FUSED, config=FAST)


def test_plan_on_other_modes_rejected():
    plan = FusionPlan(chains=(("a", "b"),))
    with pytest.raises(ConfigurationError):
        run(GPT2, INTEL_H100, fusion_plan=plan, config=FAST)


def test_proximity_mode_reduces_launches():
    eager = run(GPT2, INTEL_H100, batch_size=1, seq_len=128, config=FAST)
    names = [k.name for k in eager.flat_kernels()]
    plan = FusionPlan(chains=(tuple(names[:8]),))
    fused = run(GPT2, INTEL_H100, batch_size=1, seq_len=128,
                mode=ExecutionMode.PROXIMITY_FUSED, fusion_plan=plan,
                config=FAST)
    assert fused.kernels_per_iteration == eager.kernels_per_iteration - 7
    assert any(k.name.startswith("fused_chain_L8") for k in fused.trace.kernels)


def test_proximity_mode_preserves_total_work():
    eager = run(GPT2, INTEL_H100, batch_size=1, seq_len=128, config=FAST)
    names = [k.name for k in eager.flat_kernels()]
    plan = FusionPlan(chains=(tuple(names[:8]),))
    fused = run(GPT2, INTEL_H100, batch_size=1, seq_len=128,
                mode=ExecutionMode.PROXIMITY_FUSED, fusion_plan=plan,
                config=FAST)
    assert sum(k.flops for k in fused.flat_kernels()) == pytest.approx(
        sum(k.flops for k in eager.flat_kernels()))


def test_launch_queue_depth_throttles_cpu():
    deep = run(BERT_BASE, GH200, batch_size=32, seq_len=512, config=FAST)
    shallow = run(BERT_BASE, GH200, batch_size=32, seq_len=512,
                  config=EngineConfig(iterations=1, launch_queue_depth=4))
    # With a tiny queue the CPU blocks on the GPU, stretching CPU-side time.
    deep_end = max(o.ts_end for o in deep.trace.operators)
    shallow_end = max(o.ts_end for o in shallow.trace.operators)
    assert shallow_end > deep_end


def test_warmup_iterations_excluded_from_marks():
    config = EngineConfig(iterations=2, warmup_iterations=1)
    result = run(BERT_BASE, INTEL_H100, batch_size=1, seq_len=128,
                 config=config)
    trace = result.trace
    assert len(trace.iterations) == 2
    # Warm-up kernels exist in the trace but before the first mark.
    per_iter = result.kernels_per_iteration
    assert len(trace.kernels) == 3 * per_iter
    first_mark = trace.iterations[0].ts
    warmup_kernels = [k for k in trace.kernels if k.ts < first_mark]
    assert len(warmup_kernels) == per_iter
    # Metrics see only the measured iterations.
    from repro.skip import compute_metrics
    metrics = compute_metrics(trace)
    assert len(metrics.iterations) == 2


def test_warmup_does_not_change_measured_metrics():
    from repro.skip import compute_metrics
    cold = compute_metrics(run(BERT_BASE, INTEL_H100, batch_size=1,
                               seq_len=128, config=FAST).trace)
    warm = compute_metrics(run(
        BERT_BASE, INTEL_H100, batch_size=1, seq_len=128,
        config=EngineConfig(iterations=1, warmup_iterations=2)).trace)
    assert warm.inference_latency_ns == pytest.approx(
        cold.inference_latency_ns, rel=1e-6)
    assert warm.tklqt_ns == pytest.approx(cold.tklqt_ns, rel=1e-6)


def test_engine_config_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(iterations=0)
    with pytest.raises(ConfigurationError):
        EngineConfig(launch_queue_depth=0)
    with pytest.raises(ConfigurationError):
        EngineConfig(dispatch_epilogue_fraction=1.0)


def test_compile_report_attached(bert_result):
    assert bert_result.compile_report.total_s == pytest.approx(0.406)


def test_metadata_complete(bert_result):
    meta = bert_result.trace.metadata
    assert meta["platform"] == "Intel+H100"
    assert meta["model"] == "bert-base-uncased"
    assert meta["mode"] == "eager"
    assert meta["phase"] == "prefill"
