"""Crossover-point detection (Figs. 10a/11a)."""

import pytest

from repro.analysis import find_crossover
from repro.errors import AnalysisError


def test_bert_crossover_at_paper_batch_size(bert_sweep):
    """Paper: encoder CP at BS=16 for GH200 vs the LC systems."""
    cp = find_crossover(bert_sweep, "GH200", "Intel+H100")
    assert cp.batch_size == 16


def test_gh200_loses_below_crossover(bert_sweep):
    cp = find_crossover(bert_sweep, "GH200", "Intel+H100")
    index = bert_sweep.batch_sizes.index(cp.batch_size)
    assert all(s < 1.0 for s in cp.speedups[:index])
    assert all(s > 1.0 for s in cp.speedups[index:])


def test_bert_bs64_speedups_match_paper_band(bert_sweep):
    """Paper: 1.6x / 2.4x at BS=64 over Intel+H100 / AMD+A100."""
    vs_intel = find_crossover(bert_sweep, "GH200", "Intel+H100")
    vs_amd = find_crossover(bert_sweep, "GH200", "AMD+A100")
    assert vs_intel.speedup_at(bert_sweep.batch_sizes, 64) == pytest.approx(
        2.0, rel=0.25)
    assert vs_amd.speedup_at(bert_sweep.batch_sizes, 64) == pytest.approx(
        2.4, rel=0.25)


def test_llama_bs16_speedups_match_paper(llama_sweep):
    """Paper: Llama-3.2-1B 1.9x / 2.7x at BS=16."""
    vs_intel = find_crossover(llama_sweep, "GH200", "Intel+H100")
    vs_amd = find_crossover(llama_sweep, "GH200", "AMD+A100")
    assert vs_intel.speedup_at(llama_sweep.batch_sizes, 16) == pytest.approx(
        1.9, rel=0.15)
    assert vs_amd.speedup_at(llama_sweep.batch_sizes, 16) == pytest.approx(
        2.7, rel=0.15)


def test_unswept_batch_rejected(bert_sweep):
    cp = find_crossover(bert_sweep, "GH200", "Intel+H100")
    with pytest.raises(AnalysisError):
        cp.speedup_at(bert_sweep.batch_sizes, 3)


def test_same_platform_rejected(bert_sweep):
    with pytest.raises(AnalysisError):
        find_crossover(bert_sweep, "GH200", "GH200")


def test_crossover_never_found():
    from repro.analysis.sweep import SweepPoint, SweepResult
    from repro.skip.metrics import IterationMetrics, SkipMetrics

    def metrics(il):
        return SkipMetrics(iterations=[IterationMetrics(
            0, 1.0, 1.0, il, 0.0, 0.0, il, il, 1, 1.0)])

    sweep = SweepResult(model="toy", batch_sizes=(1, 2))
    for bs, slow, fast in ((1, 10.0, 5.0), (2, 20.0, 10.0)):
        sweep.points.append(SweepPoint("slow", "toy", bs, metrics(slow)))
        sweep.points.append(SweepPoint("fast", "toy", bs, metrics(fast)))
    cp = find_crossover(sweep, "slow", "fast")
    assert not cp.found
