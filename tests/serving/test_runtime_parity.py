"""Sim-backed serving reproduces the legacy loops bit-identically.

``repro.serving.legacy`` keeps the original closed-form loops as parity
oracles. The sim-backed processes perform the same floating-point
operations in the same order, so with one replica every outcome field is
*exactly* equal — not approximately — to the legacy result. The one
deliberate divergence is the priority scheduler's bulk completion times
(the legacy loop overcharges mixed-length bulk batches; see
``test_scheduler.py``), where the sim may only ever be earlier.
"""

import pytest

from repro.hardware import GH200, INTEL_H100
from repro.serving import (
    ClassifiedRequest,
    ContinuousBatchPolicy,
    LatencyModel,
    PriorityPolicy,
    RequestClass,
    StaticBatchPolicy,
    simulate_continuous_batching,
    simulate_priority_scheduling,
    simulate_static_batching,
    poisson_requests,
)
from repro.serving.legacy import (
    legacy_continuous_batching,
    legacy_priority_scheduling,
    legacy_static_batching,
)
from repro.workloads import GPT2


@pytest.fixture(scope="module")
def latency():
    return LatencyModel(INTEL_H100)


@pytest.fixture(scope="module")
def stream():
    # Jittered lengths exercise uneven batches; 1.2 s at 60 req/s keeps
    # idle gaps, saturated stretches, and stragglers all in one stream.
    return poisson_requests(rate_per_s=60, duration_s=1.2, prompt_len=256,
                            prompt_jitter=64, output_tokens=8,
                            output_jitter=6, seed=11)


def _key(outcome):
    return (outcome.request.request_id, outcome.ttft_ns,
            outcome.completion_ns, outcome.batch_size, outcome.queue_ns)


def test_static_batching_matches_legacy_exactly(latency, stream):
    policy = StaticBatchPolicy(max_batch_size=6, max_wait_ns=40e6)
    sim = simulate_static_batching(stream, GPT2, latency, policy)
    legacy = legacy_static_batching(stream, GPT2, latency, policy)
    assert [_key(o) for o in sim.outcomes] == [_key(o) for o in legacy.outcomes]


def test_continuous_batching_matches_legacy_exactly(latency, stream):
    policy = ContinuousBatchPolicy(max_active=8)
    sim = simulate_continuous_batching(stream, GPT2, latency, policy)
    legacy = legacy_continuous_batching(stream, GPT2, latency, policy)
    assert [_key(o) for o in sim.outcomes] == [_key(o) for o in legacy.outcomes]


def test_priority_matches_legacy_except_bulk_overcharge(stream):
    latency = LatencyModel(GH200)
    classified = [ClassifiedRequest(
        request=request,
        request_class=(RequestClass.INTERACTIVE if request.request_id % 4 == 0
                       else RequestClass.BULK))
        for request in stream]
    policy = PriorityPolicy(interactive_batch=2, bulk_batch=16)
    sim = simulate_priority_scheduling(classified, GPT2, latency, policy)
    legacy = legacy_priority_scheduling(classified, GPT2, latency, policy)

    for sim_report, legacy_report in ((sim.interactive, legacy.interactive),
                                      (sim.bulk, legacy.bulk)):
        assert len(sim_report.outcomes) == len(legacy_report.outcomes)
        for ours, theirs in zip(sim_report.outcomes, legacy_report.outcomes):
            assert ours.request.request_id == theirs.request.request_id
            assert ours.ttft_ns == theirs.ttft_ns
            assert ours.queue_ns == theirs.queue_ns
            assert ours.batch_size == theirs.batch_size
            # The fix can only move completions earlier, never later.
            assert ours.completion_ns <= theirs.completion_ns
