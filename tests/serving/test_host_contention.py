"""Finite-host serving: parity with host=None, stalls, NUMA pricing.

The parity anchor for the whole subsystem: ``host=None`` (the CLI's
``--host-cores 0``) must run the exact float operations the stack ran
before ``repro.host`` existed, and a host generous enough to never queue a
booking must reproduce those outcomes bit for bit — the pricing seam adds
``(start - ts) + (cpu' - cpu)``, which is exactly ``0.0`` when no grant
stalls or spills.
"""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import get_platform, host_for
from repro.host import HostConfig, HostModel
from repro.obs import RunRecorder
from repro.serving.batcher import StaticBatchPolicy
from repro.serving.cluster import RouterPolicy, simulate_cluster
from repro.serving.latency import LatencyModel
from repro.serving.requests import poisson_requests
from repro.serving.runtime import simulate_serving
from repro.workloads import GPT2

AMD = get_platform("AMD+A100")


@pytest.fixture(scope="module")
def latency():
    return LatencyModel(platform=AMD)


@pytest.fixture(scope="module")
def stream():
    # Fast enough that four replicas stay busy simultaneously — an
    # undersized host must visibly queue their dispatch work.
    return poisson_requests(rate_per_s=300.0, duration_s=0.05,
                            prompt_len=128, output_tokens=16, seed=11)


def _rows(result):
    return [(o.request.request_id, o.ttft_ns, o.completion_ns,
             o.batch_size, o.queue_ns, o.replica) for o in result.outcomes]


def _cluster(stream, latency, host=None, replicas=4, **kwargs):
    return simulate_cluster(stream, GPT2, latency,
                            router=RouterPolicy.ROUND_ROBIN,
                            replicas=replicas, host=host, **kwargs)


# ----------------------------------------------------------------------
# Parity
# ----------------------------------------------------------------------
def test_no_host_run_reports_no_host_stats(stream, latency):
    result = _cluster(stream, latency)
    assert result.host is None


def test_generous_host_is_bit_identical_to_no_host(stream, latency):
    baseline = _cluster(stream, latency)
    host = HostModel.for_platform(AMD, replicas=4)  # full 2x16-core board
    contended = _cluster(stream, latency, host=host)
    assert _rows(contended) == _rows(baseline)
    assert contended.host is not None
    assert contended.host.stall_ns == 0.0
    assert contended.host.remote_grants == 0
    assert contended.host.grants > 0


def test_generous_host_parity_holds_for_single_replica_serving(latency):
    requests = poisson_requests(rate_per_s=120.0, duration_s=0.05,
                                prompt_len=128, output_tokens=12, seed=7)
    baseline = simulate_serving(requests, GPT2, latency)
    host = HostModel.for_platform(AMD, replicas=1)
    priced = simulate_serving(requests, GPT2, latency, host=host)
    assert _rows(priced) == _rows(baseline)
    assert priced.host is not None and priced.host.stall_ns == 0.0


# ----------------------------------------------------------------------
# Contention
# ----------------------------------------------------------------------
def test_undersized_host_stalls_and_delays_completions(stream, latency):
    baseline = _cluster(stream, latency)
    host = HostModel.for_platform(AMD, replicas=4,
                                  config=HostConfig(cores=2))
    starved = _cluster(stream, latency, host=host)
    assert starved.host is not None
    assert starved.host.stall_ns > 0.0
    assert starved.host.cores == 2
    # Round-robin pins each request to the same replica in both runs, and
    # starvation only ever delays a replica's steps: every request is
    # served exactly once and no completion gets earlier.
    done = {o.request.request_id: o.completion_ns for o in starved.outcomes}
    reference = {o.request.request_id: o.completion_ns
                 for o in baseline.outcomes}
    assert sorted(done) == sorted(reference)
    assert all(done[rid] >= reference[rid] for rid in reference)
    assert sum(done[rid] > reference[rid] for rid in reference) > len(done) // 2


def test_unpinned_contention_spills_across_sockets(stream, latency):
    host = HostModel.for_platform(AMD, replicas=4,
                                  config=HostConfig(cores=2))
    result = _cluster(stream, latency, host=host)
    assert result.host.remote_grants > 0


def test_pinned_run_never_spills_and_is_no_faster(stream, latency):
    spec = host_for(AMD)
    free = _cluster(stream, latency,
                    host=HostModel(spec, 4, HostConfig(cores=2)))
    pinned = _cluster(stream, latency,
                      host=HostModel(spec, 4, HostConfig(cores=2, pin=True)))
    # Pinning trades remote-penalty pricing for local queueing: the free
    # run spills (and pays the penalty), the pinned run only ever waits.
    assert pinned.host.remote_grants == 0
    assert free.host.remote_grants > 0
    assert pinned.host.stall_ns > 0.0


def test_numa_override_funnels_every_grant_to_one_domain(stream, latency):
    recorder = RunRecorder()
    host = HostModel.for_platform(AMD, replicas=4,
                                  config=HostConfig(cores=4, numa=1))
    _cluster(stream, latency, host=host, recorder=recorder)
    assert recorder.host_grants
    local = [g for g in recorder.host_grants if not g["remote"]]
    assert local and all(g["domain"] == 1 for g in local)


def test_per_replica_cpu_utilization_reflects_booked_time(stream, latency):
    host = HostModel.for_platform(AMD, replicas=4,
                                  config=HostConfig(cores=4))
    result = _cluster(stream, latency, host=host)
    assert all(0.0 <= s.cpu_utilization <= 1.0 for s in result.replicas)
    assert any(s.cpu_busy_ns > 0.0 for s in result.replicas)


def test_host_stats_account_for_every_booking(stream, latency):
    host = HostModel.for_platform(AMD, replicas=4,
                                  config=HostConfig(cores=2))
    result = _cluster(stream, latency, host=host)
    stats = result.host
    assert stats.domains == 2
    assert stats.busy_ns == pytest.approx(host.pool.busy_ns)
    assert stats.busy_per_core_ns == pytest.approx(stats.busy_ns / 2)
    assert stats.remote_grants <= stats.grants


# ----------------------------------------------------------------------
# Configuration guards
# ----------------------------------------------------------------------
def test_host_config_validation():
    with pytest.raises(ConfigurationError):
        HostConfig(cores=-1)
    with pytest.raises(ConfigurationError):
        HostConfig(numa=-1)
    with pytest.raises(ConfigurationError):
        HostModel.for_platform(AMD, replicas=0)
    with pytest.raises(ConfigurationError, match="out of range"):
        HostModel.for_platform(AMD, replicas=2, config=HostConfig(numa=5))


def test_host_requires_continuous_batching(latency):
    requests = poisson_requests(rate_per_s=100.0, duration_s=0.02,
                                prompt_len=64, output_tokens=4, seed=3)
    host = HostModel.for_platform(AMD, replicas=1)
    with pytest.raises(ConfigurationError):
        simulate_serving(requests, GPT2, latency,
                         policy=StaticBatchPolicy(max_batch_size=4),
                         host=host)
