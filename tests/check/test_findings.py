"""Finding model: rule registry, report aggregation, rendering."""

import json

import pytest

from repro.check import CheckReport, Finding, RULES, Severity, register_rule

# Importing repro.check pulls in every pass module, so the registry is
# fully populated here.


def test_registry_covers_all_eight_passes():
    passes = {rule.pass_name for rule in RULES.values()}
    assert passes == {"graph", "schedule", "trace", "code", "kv", "hb",
                      "cluster", "host"}


def test_rule_ids_follow_pass_prefix():
    prefix = {"graph": "G", "schedule": "S", "trace": "T", "code": "C",
              "kv": "K", "hb": "H", "cluster": "R", "host": "N"}
    for rule in RULES.values():
        assert rule.rule_id.startswith(prefix[rule.pass_name])
        assert rule.rule_id[1:].isdigit()


def test_register_rule_idempotent_but_rejects_redefinition():
    first = register_rule("G001", "graph",
                          "FLOPs not conserved across the TP sharding pass")
    assert first == "G001"
    with pytest.raises(ValueError):
        register_rule("G001", "graph", "something else entirely")


def test_finding_rejects_unregistered_rule():
    with pytest.raises(ValueError):
        Finding("Z999", Severity.ERROR, "nowhere", "no such rule")


def test_report_ok_ignores_warnings():
    report = CheckReport()
    report.extend([Finding("G009", Severity.WARNING, "op[0]", "zero work")],
                  "fixture")
    assert report.ok
    assert report.errors == []
    report.extend([Finding("G001", Severity.ERROR, "op[1]", "lost flops")])
    assert not report.ok
    assert len(report.errors) == 1


def test_report_json_is_machine_readable():
    report = CheckReport()
    report.extend([Finding("T001", Severity.ERROR, "event[3]", "out of order")],
                  "trace.json")
    payload = json.loads(report.to_json())
    assert payload["ok"] is False
    assert payload["checked"] == ["trace.json"]
    (finding,) = payload["findings"]
    assert finding == {
        "rule": "T001",
        "pass": "trace",
        "severity": "error",
        "location": "event[3]",
        "message": "out of order",
    }


def test_render_shows_rule_id_and_location():
    finding = Finding("S001", Severity.ERROR, "collective x", "deadlock")
    text = finding.render()
    assert "S001" in text
    assert "[collective x]" in text
    report = CheckReport(findings=[finding], checked=["a", "b"])
    assert "checked 2 artifact(s): 1 error(s)" in report.render()
