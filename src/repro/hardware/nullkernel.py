"""nullKernel micro-benchmark (Table V).

The paper launches an empty kernel repeatedly and reports (a) the launch
overhead — launch-call begin to kernel begin on an idle GPU — and (b) the
kernel's own execution duration. Both expose fixed platform costs that bound
TKLQT from below in the CPU-bound region.

Our model reproduces the measurement procedure: N back-to-back launches on an
idle stream with a sync between each, so no queuing occurs, then averages.
Optional Gaussian jitter models run-to-run measurement noise.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.platform import Platform


@dataclass(frozen=True)
class NullKernelResult:
    """Averaged nullKernel measurements for one platform (Table V row)."""

    platform: str
    launch_overhead_ns: float
    duration_ns: float
    samples: int

    def as_row(self) -> tuple[str, float, float]:
        return (self.platform, self.launch_overhead_ns, self.duration_ns)


def measure_nullkernel(
    platform: Platform,
    samples: int = 1000,
    jitter_fraction: float = 0.0,
    seed: int = 0,
) -> NullKernelResult:
    """Run the nullKernel micro-benchmark on a platform model.

    Args:
        platform: Platform under test.
        samples: Number of launches to average over.
        jitter_fraction: Relative std-dev of per-sample Gaussian noise
            (0 disables noise and returns the exact model values).
        seed: RNG seed for the jitter.

    Returns:
        Averaged launch overhead and kernel duration.
    """
    if samples <= 0:
        raise ConfigurationError("samples must be positive")
    if jitter_fraction < 0:
        raise ConfigurationError("jitter_fraction must be non-negative")

    base_overhead = platform.launch_latency_ns
    base_duration = platform.gpu.min_kernel_ns
    if jitter_fraction == 0.0:
        return NullKernelResult(platform.name, base_overhead, base_duration, samples)

    rng = random.Random(seed)
    overhead_total = 0.0
    duration_total = 0.0
    for _ in range(samples):
        overhead_total += max(0.0, rng.gauss(base_overhead, base_overhead * jitter_fraction))
        duration_total += max(0.0, rng.gauss(base_duration, base_duration * jitter_fraction))
    return NullKernelResult(
        platform.name,
        overhead_total / samples,
        duration_total / samples,
        samples,
    )


def nullkernel_table(
    platforms: tuple[Platform, ...] | list[Platform],
    samples: int = 1000,
    jitter_fraction: float = 0.0,
) -> list[NullKernelResult]:
    """Produce Table V: one nullKernel row per platform."""
    return [measure_nullkernel(p, samples, jitter_fraction) for p in platforms]


def launch_overhead_stddev(result: NullKernelResult, jitter_fraction: float) -> float:
    """Expected std-dev of the averaged overhead given per-sample jitter."""
    return result.launch_overhead_ns * jitter_fraction / math.sqrt(result.samples)
