"""Named simulation resources: CPU threads, GPU devices/streams, links.

``StreamResource`` is the in-order CUDA stream model (formerly
``repro.engine.gpu_stream.GpuStream``, folded in here): a kernel starts at
``max(arrival, previous kernel's end)`` — the difference between its start
and its launch-call begin is exactly the paper's per-kernel launch-and-queuing
time ``t_l`` (Eq. 1).

``LinkResource`` wraps an :class:`~repro.hardware.interconnect.InterconnectSpec`
for device-to-device traffic and provides the ring all-reduce cost model the
tensor-parallel collectives use.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.hardware.interconnect import InterconnectSpec

if TYPE_CHECKING:  # import would be circular only in annotations' eyes; kept
    from repro.sim.causality import CausalityLog  # lazy for import hygiene.


@dataclass(slots=True)
class StreamResource:
    """One in-order stream on one GPU device.

    Attributes:
        stream_id: Stream number reported in traces (CUDA's default compute
            stream shows up as 7 in profiler output; additional streams on
            the same device count up from there).
        device: Owning GPU ordinal.
        free_at: Time the stream finishes its last submitted kernel.
        busy_ns: Accumulated kernel execution time.
        kernel_count: Number of kernels submitted.
        start_times: Start time of every submitted kernel, in order (used by
            the executor to model the bounded launch queue).
        log: Optional causality log; when attached (``SimCore(causality=…)``)
            every submitted kernel records an ``occupy`` interval.
    """

    stream_id: int = 7
    device: int = 0
    free_at: float = 0.0
    busy_ns: float = 0.0
    kernel_count: int = 0
    start_times: list[float] = field(default_factory=list)
    log: CausalityLog | None = None

    @property
    def label(self) -> str:
        """Stable causality-log resource name for this stream."""
        return f"device{self.device}.stream{self.stream_id}"

    def submit(self, arrival_ns: float, duration_ns: float,
               gap_ns: float = 0.0) -> tuple[float, float]:
        """Submit a kernel; returns (start, end) timestamps.

        Args:
            arrival_ns: When the kernel reaches the GPU front-end (launch-call
                begin + launch latency).
            duration_ns: Execution duration.
            gap_ns: Stream front-end gap between back-to-back kernels
                (individually launched kernels pay a small teardown/setup
                cost that CUDA-graph replay avoids).
        """
        if duration_ns < 0:
            raise SimulationError("kernel duration must be non-negative")
        if arrival_ns < 0:
            raise SimulationError("kernel arrival must be non-negative")
        if gap_ns < 0:
            raise SimulationError("gap must be non-negative")
        back_to_back = self.kernel_count > 0
        start = max(arrival_ns, self.free_at + (gap_ns if back_to_back else 0.0))
        end = start + duration_ns
        self.free_at = end
        self.busy_ns += duration_ns
        self.kernel_count += 1
        self.start_times.append(start)
        if self.log is not None:
            self.log.occupy(self.label, start, end)
        return start, end

    def earliest_start(self, arrival_ns: float, gap_ns: float = 0.0) -> float:
        """When a kernel arriving at ``arrival_ns`` could start, without
        submitting it. Collectives use this to compute the cross-device
        rendezvous time before committing the kernel to every stream."""
        back_to_back = self.kernel_count > 0
        return max(arrival_ns, self.free_at + (gap_ns if back_to_back else 0.0))

    def pending_at(self, ts: float) -> int:
        """Submitted kernels that have not yet started executing at ``ts``.

        This is the launch-queue occupancy the observability layer samples:
        ``start_times`` is non-decreasing on an in-order stream, so a binary
        search keeps the sample O(log n).
        """
        return self.kernel_count - bisect_right(self.start_times, ts)

    def nth_start(self, index: int) -> float:
        """Start time of the ``index``-th submitted kernel (0-based)."""
        try:
            return self.start_times[index]
        except IndexError:
            raise SimulationError(f"no kernel {index} submitted yet") from None


@dataclass(slots=True)
class CpuThread:
    """One CPU dispatch thread.

    The thread's clock lives inside its process; the resource records
    identity (trace ``tid``) and lifetime statistics.
    """

    tid: int = 1
    name: str = "dispatch"
    busy_ns: float = 0.0

    def occupy(self, duration_ns: float) -> None:
        """Account ``duration_ns`` of CPU-thread occupancy."""
        if duration_ns < 0:
            raise SimulationError("occupancy must be non-negative")
        self.busy_ns += duration_ns


@dataclass(slots=True)
class GpuDevice:
    """One GPU with one or more in-order streams.

    The default compute stream is ``streams[0]`` (stream id 7, matching what
    profilers report for the first CUDA stream); extra streams count up.
    ``replica`` identifies the serving engine replica the device belongs to
    (0 for single-engine runs; see :mod:`repro.serving.runtime`).
    """

    index: int = 0
    streams: list[StreamResource] = field(default_factory=list)
    replica: int = 0

    def __post_init__(self) -> None:
        if not self.streams:
            self.streams = [StreamResource(stream_id=7, device=self.index)]

    @property
    def compute_stream(self) -> StreamResource:
        return self.streams[0]

    @property
    def free_at(self) -> float:
        """Time the device finishes all submitted work, across streams."""
        return max(stream.free_at for stream in self.streams)

    @property
    def busy_ns(self) -> float:
        return sum(stream.busy_ns for stream in self.streams)


@dataclass(slots=True)
class LinkResource:
    """A device-to-device interconnect link.

    Wraps an :class:`InterconnectSpec` and adds the collective cost model:
    a ring all-reduce over ``world`` devices moves ``2*(world-1)`` chunks of
    ``message/world`` bytes per device, paying the link's base latency per
    step — the standard bandwidth-optimal ring schedule.
    """

    spec: InterconnectSpec
    transfers: int = 0
    busy_ns: float = 0.0
    log: CausalityLog | None = None

    def p2p_ns(self, num_bytes: float) -> float:
        """Point-to-point transfer time across the link."""
        return self.spec.transfer_ns(num_bytes)

    def allreduce_ns(self, message_bytes: float, world: int) -> float:
        """Duration of one ring all-reduce of ``message_bytes`` (full tensor
        size) across ``world`` devices."""
        if message_bytes < 0:
            raise SimulationError("all-reduce message size must be non-negative")
        if world < 1:
            raise SimulationError("all-reduce world size must be positive")
        if world == 1 or message_bytes == 0:
            return 0.0
        steps = 2 * (world - 1)
        chunk = message_bytes / world
        # bandwidth_gbs GB/s is numerically equal to bytes per nanosecond.
        return steps * (self.spec.base_latency_ns + chunk / self.spec.bandwidth_gbs)

    def record(self, duration_ns: float,
               start_ns: float | None = None) -> None:
        """Account one collective/transfer occupancy on the link.

        Callers that know when the transfer begins pass ``start_ns`` so an
        attached causality log can record the occupancy *interval*; the
        aggregate accounting is identical either way.
        """
        if duration_ns < 0:
            raise SimulationError("link occupancy must be non-negative")
        self.transfers += 1
        self.busy_ns += duration_ns
        if self.log is not None and start_ns is not None:
            self.log.occupy("link", start_ns, start_ns + duration_ns)
