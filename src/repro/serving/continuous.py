"""Continuous (iteration-level) batching, vLLM-style.

Section IV-B: serving frameworks like vLLM "aim to maximize throughput while
approaching the low latency characteristic of BS=1 execution" using
continuous batching. This policy admits requests at decode-step boundaries
instead of waiting to assemble a full static batch: new arrivals are
prefilled as soon as the engine is free, then join the running decode batch,
so one slow request never holds a batch hostage.

Decode-step latencies are looked up through the engine-backed LatencyModel
with context lengths bucketed (decode cost is near-affine in context, and
bucketing bounds the number of engine runs).

Batch composition is delegated to the token-budget planner
(:mod:`repro.serving.planner`). With ``chunk_tokens == 0`` (the default)
prompts prefill whole and the loop reproduces
:func:`repro.serving.legacy.legacy_continuous_batching` bit-for-bit; with a
positive budget, prompts are prefilled in budget-sized *chunks* interleaved
with decode steps (sarathi-serve's stall-free scheduling), so a long prompt
delays in-flight decodes by at most one chunk instead of a whole prefill.

The serving loop is :func:`continuous_batching_process`, a process on
:class:`repro.serving.runtime.ServingRuntime`. Passing a
:class:`repro.obs.RunRecorder` records every admission, prefill batch or
chunk, decode step, token, and completion; the recorded run exports as a
SKIP-analyzable Chrome trace (see ``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.batcher import ServingReport
from repro.serving.latency import LatencyModel
from repro.serving.planner import (ChunkedSequenceState, PlannerConfig,
                                   PromptChunk, StepPlanner,
                                   decode_schedule_label)
from repro.serving.requests import Request, queue_delay_ns
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.serving.runtime import EngineSession, ServingRuntime
    from repro.sim.core import Process


@dataclass(frozen=True)
class ContinuousBatchPolicy:
    """Iteration-level scheduling knobs.

    Attributes:
        max_active: Maximum sequences decoding concurrently.
        context_bucket: Decode context lengths are rounded up to this
            multiple for latency lookups.
        chunk_tokens: Per-step token budget for chunked prefill
            (``max_num_batched_tokens``); 0 disables chunking and
            reproduces whole-prefill serving bit-identically.
    """

    max_active: int = 16
    context_bucket: int = 64
    chunk_tokens: int = 0

    def __post_init__(self) -> None:
        if self.max_active <= 0:
            raise ConfigurationError("max_active must be positive")
        if self.context_bucket <= 0:
            raise ConfigurationError("context_bucket must be positive")
        if self.chunk_tokens < 0:
            raise ConfigurationError(
                "chunk_tokens must be non-negative (0 disables chunking)")
        if self.chunk_tokens and self.chunk_tokens < self.max_active:
            raise ConfigurationError(
                f"chunk_tokens ({self.chunk_tokens}) must cover one decode "
                f"token per active sequence (max_active={self.max_active})")


def continuous_batching_process(runtime: ServingRuntime,
                                session: EngineSession,
                                policy: ContinuousBatchPolicy) -> Process:
    """One replica's iteration-level scheduler, as a sim process.

    Each wake-up is one planner-composed engine step: every active sequence
    decodes one token, then the leftover token budget (if chunking is on)
    runs prompt chunks for claimed-but-unprefilled requests; finished
    sequences retire and new arrivals are admitted at the step boundary.
    With chunking off, admission prefills the whole batch immediately and
    steps are pure decodes — the legacy schedule, bit for bit.
    """
    queue = runtime.queue
    latency = runtime.latency
    model = runtime.model
    recorder = runtime.recorder
    # Finite-host runs price each step's dispatch-CPU share so the
    # session can book it on the contended core pool; the infinite-CPU
    # path passes 0.0 and performs no extra lookups.
    host = session.host
    planner = StepPlanner(PlannerConfig(chunk_tokens=policy.chunk_tokens),
                          max_active=policy.max_active)
    active: list[ChunkedSequenceState] = []
    # Chunked mode: requests claimed but still prefilling, by id, with the
    # claim time (queue-delay accounting needs it once the last chunk lands).
    admitted: dict[int, tuple[Request, float]] = {}
    newly_joined: list[int] = []        # rids whose first decode is next step
    clock = 0.0

    def start_sequence(request: Request, admitted_ns: float,
                       batch_size: int) -> None:
        """Shared post-prefill bookkeeping: first token, retire or join."""
        seq = ChunkedSequenceState(
            request=request,
            first_token_ns=clock - request.arrival_ns,
            remaining=request.output_tokens - 1,
            context=request.prompt_len + 1,
            admitted_ns=admitted_ns,
            last_token_ns=clock - request.arrival_ns,
        )
        if recorder is not None:
            recorder.on_first_token(request.request_id, clock)
        if seq.remaining <= 0:
            # Single-token request: its first (prefill) token is its
            # last; it completes here and never joins the decode batch.
            if recorder is not None:
                recorder.on_completed(request.request_id, clock)
            runtime.complete(request,
                             ttft_ns=seq.first_token_ns,
                             completion_ns=seq.first_token_ns,
                             batch_size=batch_size,
                             service_start_ns=admitted_ns,
                             session=session)
        else:
            active.append(seq)
            if planner.enabled:
                newly_joined.append(request.request_id)

    def admit() -> None:
        nonlocal clock
        batch = queue.claim(
            clock, policy.max_active - len(active) - planner.pending_count)
        if not batch:
            return
        admitted_ns = clock
        if recorder is not None:
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     clock)
        if planner.enabled:
            # Chunked mode: defer prefill to the step loop, where the
            # planner interleaves budget-sized chunks with decodes.
            planner.admit(batch, clock)
            for request in batch:
                admitted[request.request_id] = (request, admitted_ns)
            return
        prompt_len = max(r.prompt_len for r in batch)
        for chunk in planner.prefill_plan(batch[0].request_id, prompt_len):
            # Whole-prompt plan: one chunk priced by the same single
            # ttft_ns lookup the pre-planner loop made (the parity anchor).
            prefill_ns = StepPlanner.chunk_cost_ns(latency, model,
                                                   len(batch), chunk)
            clock += session.execute(
                chunk.kind, clock, prefill_ns, len(batch),
                queue_depth=queue.depth(clock) if recorder is not None else 0,
                shape=EngineShape(model.name, len(batch), prompt_len)
                if recorder is not None else None,
                schedule_label=chunk.schedule_label,
                cpu_ns=StepPlanner.chunk_cpu_ns(latency, model, len(batch),
                                                chunk)
                if host is not None else 0.0)
        for request in batch:
            start_sequence(request, admitted_ns, len(batch))

    def run_chunk(chunk: PromptChunk) -> None:
        """Execute one planned prompt chunk (BS=1 marginal-prefill cost)."""
        nonlocal clock
        chunk_ns = StepPlanner.chunk_cost_ns(latency, model, 1, chunk)
        clock += session.execute(
            chunk.kind, clock, chunk_ns, 1,
            queue_depth=queue.depth(clock) if recorder is not None else 0,
            shape=None, schedule_label=chunk.schedule_label,
            cpu_ns=StepPlanner.chunk_cpu_ns(latency, model, 1, chunk)
            if host is not None else 0.0)
        if chunk.is_last:
            request, admitted_ns = admitted.pop(chunk.request_id)
            start_sequence(request, admitted_ns, 1)

    while True:
        clock = yield ("at", clock)
        if not active and not planner.has_pending:
            nxt = queue.next_unclaimed_arrival()
            if nxt is None:
                break
            if nxt > clock:
                # Idle engine: sleep until the next arrival (another replica
                # may claim it first; re-check on wake).
                clock = nxt
                continue
            admit()
            continue
        # Compose the step up front: decode tokens first (decode priority),
        # then whatever budget remains as prompt chunks.
        plan = planner.plan_step(len(active))
        if active:
            # One decode step for the whole active set.
            context = max(seq.context for seq in active)
            bucketed = (-(-context // policy.context_bucket)
                        * policy.context_bucket)
            step_ns = latency.decode_step_ns(model, len(active), bucketed)
            clock += session.execute(
                StepKind.DECODE, clock, step_ns, len(active),
                queue_depth=queue.depth(clock) if recorder is not None else 0,
                shape=EngineShape(model.name, len(active), 1,
                                  phase="decode", context_len=bucketed)
                if recorder is not None else None,
                schedule_label=decode_schedule_label(newly_joined),
                cpu_ns=latency.decode_step_cpu_ns(model, len(active),
                                                  bucketed)
                if host is not None else 0.0)
            newly_joined.clear()
            step_batch = len(active)
            finished: list[ChunkedSequenceState] = []
            for seq in active:
                seq.context += 1
                seq.remaining -= 1
                seq.last_token_ns = clock - seq.request.arrival_ns
                if recorder is not None:
                    recorder.on_token(seq.request.request_id, clock)
                if seq.remaining <= 0:
                    finished.append(seq)
            for seq in finished:
                active.remove(seq)
                if recorder is not None:
                    recorder.on_completed(seq.request.request_id, clock)
                runtime.complete(seq.request,
                                 ttft_ns=seq.first_token_ns,
                                 completion_ns=seq.last_token_ns,
                                 batch_size=step_batch,
                                 service_start_ns=seq.admitted_ns,
                                 session=session)
        for chunk in plan.chunks:
            run_chunk(chunk)
        # Admit newly arrived requests at the step boundary.
        admit()


def simulate_continuous_batching(
    requests: Sequence[Request],
    model: ModelConfig,
    latency: LatencyModel,
    policy: ContinuousBatchPolicy = ContinuousBatchPolicy(),
    recorder: RunRecorder | None = None,
) -> ServingReport:
    """Run an iteration-level serving loop over an arrival stream.

    This is a thin wrapper over :func:`repro.serving.runtime.simulate_serving`
    with one replica; use ``simulate_serving`` directly for multi-replica
    runs or per-replica statistics.
    """
    from repro.serving.runtime import simulate_serving

    return simulate_serving(requests, model, latency, policy=policy,
                            recorder=recorder).report
