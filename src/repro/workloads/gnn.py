"""Graph-neural-network workload (GCN-style).

The paper's future work (Section VI) also names GNNs. A GCN layer is a
sparse aggregation (SpMM over the adjacency) followed by a dense projection:
the SpMM is bandwidth-bound gather traffic, the projection a modest GEMM —
a different balance point from both Transformers and DLRM, useful for
exercising the classifier across workload families.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads import ops
from repro.workloads.graph import OperatorGraph, Phase
from repro.workloads.ops import FP16_BYTES, Op, OpKind


@dataclass(frozen=True)
class GcnConfig:
    """A GCN over a node-classification graph.

    Attributes:
        name: Model id.
        num_nodes: Nodes in the input graph.
        avg_degree: Mean edges per node (drives SpMM traffic).
        in_features: Input feature width.
        hidden: Hidden width of intermediate layers.
        num_classes: Output classes.
        layers: GCN layer count.
    """

    name: str = "gcn-medium"
    num_nodes: int = 100_000
    avg_degree: int = 16
    in_features: int = 128
    hidden: int = 256
    num_classes: int = 32
    layers: int = 3

    def __post_init__(self) -> None:
        for field_name in ("num_nodes", "avg_degree", "in_features", "hidden",
                           "num_classes", "layers"):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(f"{field_name} must be positive")

    @property
    def num_edges(self) -> int:
        return self.num_nodes * self.avg_degree

    def layer_widths(self) -> list[tuple[int, int]]:
        widths = [self.in_features] + [self.hidden] * (self.layers - 1) \
            + [self.num_classes]
        return list(zip(widths, widths[1:]))


GCN_MEDIUM = GcnConfig()

GCN_LARGE = GcnConfig(name="gcn-large", num_nodes=1_000_000, avg_degree=32,
                      in_features=256, hidden=512, num_classes=64, layers=4)


def _spmm(label: str, nodes: int, edges: int, features: int) -> Op:
    """Sparse-dense matmul: aggregate neighbor features over the adjacency.

    FLOPs: one multiply-add per (edge, feature). Traffic: gather one feature
    row per edge plus indices, write one row per node — heavily
    bandwidth-bound.
    """
    flops = 2.0 * edges * features
    bytes_read = FP16_BYTES * edges * features + 8.0 * edges
    bytes_written = FP16_BYTES * nodes * features
    return Op(OpKind.MATMUL, label, flops, bytes_read, bytes_written,
              dims=(nodes, features, edges))


def build_gcn_graph(config: GcnConfig, batch_graphs: int = 1) -> OperatorGraph:
    """One GCN forward pass over ``batch_graphs`` input graphs."""
    if batch_graphs <= 0:
        raise ConfigurationError("batch_graphs must be positive")
    graph = OperatorGraph(model_name=config.name, phase=Phase.PREFILL,
                          batch_size=batch_graphs, seq_len=config.num_nodes)
    nodes = config.num_nodes * batch_graphs
    edges = config.num_edges * batch_graphs
    last = config.layers - 1
    for i, (in_f, out_f) in enumerate(config.layer_widths()):
        graph.append(_spmm(f"gcn.{i}.aggregate", nodes, edges, in_f))
        graph.append(ops.linear(f"gcn.{i}.project", nodes, in_f, out_f,
                                bias=True))
        if i < last:
            graph.append(ops.elementwise(OpKind.GELU, f"gcn.{i}.relu",
                                         nodes * out_f, flops_per_element=1.0))
            graph.append(ops.layernorm(f"gcn.{i}.norm", nodes, out_f))
    graph.append(ops.softmax("predict.softmax", nodes, config.num_classes))
    return graph
