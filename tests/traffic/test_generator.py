"""Traffic generation: length/tag sampling and the FIXED-list lift."""

import pytest

from repro.errors import ConfigurationError
from repro.serving.requests import ServingRequest, poisson_requests
from repro.traffic import (
    ArrivalFamily,
    ArrivalSpec,
    PrefixSpec,
    TrafficConfig,
    generate_traffic,
    tag_requests,
)

BURSTY = ArrivalSpec(family=ArrivalFamily.BURSTY, rate_per_s=400.0,
                     duration_s=0.2, seed=7)


def test_generate_traffic_is_deterministic():
    config = TrafficConfig(arrivals=BURSTY, prompt_jitter=64,
                           output_jitter=8, sessions=4,
                           prefix=PrefixSpec(share=0.5))
    assert generate_traffic(config) == generate_traffic(config)


def test_request_ids_are_dense_and_arrivals_ordered():
    requests = generate_traffic(TrafficConfig(arrivals=BURSTY))
    assert [r.request_id for r in requests] == list(range(len(requests)))
    arrivals = [r.arrival_ns for r in requests]
    assert arrivals == sorted(arrivals)


def test_untagged_config_leaves_requests_bare():
    requests = generate_traffic(TrafficConfig(arrivals=BURSTY))
    assert all(r.session is None for r in requests)
    assert all(r.prefix_hash is None and r.prefix_len == 0
               for r in requests)
    assert all(r.tenant == "default" for r in requests)


def test_full_prefix_share_tags_everyone():
    requests = generate_traffic(TrafficConfig(
        arrivals=BURSTY, prompt_len=200,
        prefix=PrefixSpec(share=1.0, prefix_len=96, pool=3)))
    assert requests
    for r in requests:
        assert r.prefix_hash in (1, 2, 3)
        assert r.prefix_len == 96
        assert r.prompt_len > 96  # prefix prepends the sampled suffix


def test_tagging_knobs_never_move_arrivals_or_lengths():
    # Arrivals, lengths, and tags draw from independent RNG streams:
    # raising the prefix share must not perturb when requests arrive or
    # how long their sampled parts are.
    plain = generate_traffic(TrafficConfig(arrivals=BURSTY,
                                           prompt_jitter=32,
                                           output_jitter=16))
    tagged = generate_traffic(TrafficConfig(
        arrivals=BURSTY, prompt_jitter=32, output_jitter=16,
        prefix=PrefixSpec(share=0.7, prefix_len=128), sessions=8,
        tenants=3))
    assert [r.arrival_ns for r in plain] == [r.arrival_ns for r in tagged]
    assert [r.output_tokens for r in plain] == [
        r.output_tokens for r in tagged]
    # Tagged prompts are the plain prompt plus the prefix (or unchanged).
    for p, t in zip(plain, tagged):
        assert t.prompt_len - t.prefix_len == p.prompt_len


def test_sessions_and_tenants_draw_from_their_pools():
    requests = generate_traffic(TrafficConfig(
        arrivals=BURSTY, sessions=3, tenants=2))
    assert {r.session for r in requests} <= {"s0", "s1", "s2"}
    assert {r.tenant for r in requests} <= {"t0", "t1"}


def test_generate_traffic_rejects_fixed_family():
    with pytest.raises(ConfigurationError, match="tag_requests"):
        generate_traffic(TrafficConfig(
            arrivals=ArrivalSpec(family=ArrivalFamily.FIXED)))


def test_tag_requests_without_tags_is_the_identity():
    # The --prefix-share 0 parity lock: the input objects come back.
    requests = poisson_requests(rate_per_s=100.0, duration_s=0.2,
                                prompt_len=128, output_tokens=16, seed=1)
    tagged = tag_requests(requests)
    assert tagged == list(requests)
    assert all(a is b for a, b in zip(requests, tagged))


def test_tag_requests_preserves_arrivals_and_lengths():
    requests = poisson_requests(rate_per_s=100.0, duration_s=0.2,
                                prompt_len=128, output_tokens=16, seed=1)
    tagged = tag_requests(requests, prefix=PrefixSpec(share=1.0,
                                                      prefix_len=64),
                          sessions=4, seed=1)
    assert len(tagged) == len(requests)
    for before, after in zip(requests, tagged):
        assert isinstance(after, ServingRequest)
        assert after.arrival_ns == before.arrival_ns
        assert after.prompt_len == before.prompt_len  # prompts are fixed
        assert after.output_tokens == before.output_tokens
        assert after.prefix_len <= before.prompt_len - 1


def test_tag_requests_caps_prefix_inside_fixed_prompts():
    short = poisson_requests(rate_per_s=100.0, duration_s=0.2,
                             prompt_len=8, output_tokens=4, seed=2)
    tagged = tag_requests(short, prefix=PrefixSpec(share=1.0,
                                                   prefix_len=512), seed=2)
    for r in tagged:
        assert r.prefix_len <= 7


@pytest.mark.parametrize("kwargs", [
    dict(share=-0.1), dict(share=1.1), dict(prefix_len=0), dict(pool=0),
])
def test_prefix_spec_validation(kwargs):
    with pytest.raises(ConfigurationError):
        PrefixSpec(**kwargs)


@pytest.mark.parametrize("kwargs", [
    dict(prompt_len=0), dict(output_tokens=0), dict(prompt_jitter=-1),
    dict(output_jitter=-1), dict(sessions=-1), dict(tenants=0),
])
def test_traffic_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        TrafficConfig(arrivals=BURSTY, **kwargs)
