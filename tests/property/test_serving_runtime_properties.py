"""Property-based tests for the sim-backed serving runtime.

Invariants that must hold for *any* arrival stream, policy, and replica
count: conservation (every request completes exactly once, on exactly one
replica), causality (service never precedes arrival; first token never
follows completion), per-replica clock monotonicity, and single-replica
equivalence with the legacy closed-form loops.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import INTEL_H100
from repro.obs import RunRecorder
from repro.serving import (
    ContinuousBatchPolicy,
    LatencyModel,
    Request,
    StaticBatchPolicy,
    simulate_serving,
)
from repro.serving.legacy import (
    legacy_continuous_batching,
    legacy_static_batching,
)
from repro.workloads import GPT2

# One latency model across all examples: caching makes the property runs
# cheap after the first few engine calls.
_LATENCY = LatencyModel(INTEL_H100)


@st.composite
def request_streams(draw):
    count = draw(st.integers(1, 14))
    requests = []
    clock = 0.0
    for i in range(count):
        clock += draw(st.floats(0, 2e8))  # up to 200 ms gaps
        requests.append(Request(
            request_id=i,
            arrival_ns=clock,
            prompt_len=draw(st.sampled_from([64, 128, 256])),
            output_tokens=draw(st.integers(1, 6)),
        ))
    return requests


@st.composite
def policies(draw):
    if draw(st.booleans()):
        return ContinuousBatchPolicy(max_active=draw(st.integers(1, 8)))
    return StaticBatchPolicy(max_batch_size=draw(st.integers(1, 8)),
                             max_wait_ns=draw(st.sampled_from([0.0, 5e7])))


@given(stream=request_streams(), policy=policies(),
       replicas=st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_conservation_and_causality(stream, policy, replicas):
    result = simulate_serving(stream, GPT2, _LATENCY, policy=policy,
                              replicas=replicas)
    served = [o.request.request_id for o in result.report.outcomes]
    assert sorted(served) == [r.request_id for r in stream]
    assert len(served) == len(set(served))  # exactly once, one replica each
    for outcome in result.report.outcomes:
        assert 0 <= outcome.replica < replicas
        assert outcome.queue_ns >= 0.0
        assert outcome.ttft_ns >= outcome.queue_ns
        assert outcome.completion_ns >= outcome.ttft_ns


@given(stream=request_streams(), policy=policies(),
       replicas=st.integers(1, 3))
@settings(max_examples=20, deadline=None)
def test_replica_clocks_monotone(stream, policy, replicas):
    """Each replica's recorded engine steps advance monotonically — a
    policy process never travels back in time on its own session."""
    recorder = RunRecorder()
    simulate_serving(stream, GPT2, _LATENCY, policy=policy,
                     replicas=replicas, recorder=recorder)
    last_start: dict[int, float] = {}
    for step in recorder.steps:
        assert step.ts_ns >= last_start.get(step.replica, 0.0)
        last_start[step.replica] = step.ts_ns


@given(stream=request_streams(), max_active=st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_one_replica_matches_legacy_continuous(stream, max_active):
    policy = ContinuousBatchPolicy(max_active=max_active)
    sim = simulate_serving(stream, GPT2, _LATENCY, policy=policy, replicas=1)
    legacy = legacy_continuous_batching(stream, GPT2, _LATENCY, policy)
    assert ([(o.request.request_id, o.ttft_ns, o.completion_ns,
              o.batch_size, o.queue_ns) for o in sim.report.outcomes]
            == [(o.request.request_id, o.ttft_ns, o.completion_ns,
                 o.batch_size, o.queue_ns) for o in legacy.outcomes])


@given(stream=request_streams(), batch=st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_one_replica_matches_legacy_static(stream, batch):
    policy = StaticBatchPolicy(max_batch_size=batch)
    sim = simulate_serving(stream, GPT2, _LATENCY, policy=policy, replicas=1)
    legacy = legacy_static_batching(stream, GPT2, _LATENCY, policy)
    assert ([(o.request.request_id, o.ttft_ns, o.completion_ns,
              o.batch_size, o.queue_ns) for o in sim.report.outcomes]
            == [(o.request.request_id, o.ttft_ns, o.completion_ns,
                 o.batch_size, o.queue_ns) for o in legacy.outcomes])
